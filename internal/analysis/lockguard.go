package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces the `// guarded by X.mu` field-annotation
// convention from internal/serve/repository.go: a field carrying that
// comment may only be read or written inside a function that locks
// X's mutex (a call to <recv>.mu.Lock() or .RLock() somewhere in the
// enclosing function body), or inside a helper whose name ends in
// "Locked" (the caller-holds-the-lock convention).
//
// This is a deliberately syntactic approximation — it does not prove the
// lock is held on every path, or that a closure captured under the lock
// isn't called after the unlock. It catches the common regression: a new
// method touching guarded state with no locking discipline at all.
// Composite-literal construction is naturally exempt (keyed fields are
// not selector expressions).
type LockGuard struct{}

// NewLockGuard returns the analyzer; the annotation grammar is fixed.
func NewLockGuard() *LockGuard { return &LockGuard{} }

func (*LockGuard) Name() string { return "lockguard" }
func (*LockGuard) Doc() string {
	return "fields annotated '// guarded by X.mu' are only accessed under that mutex"
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)\.([A-Za-z_]\w*)`)

// guard records one annotated field's protection contract.
type guard struct {
	guardType  string // type name whose mutex protects the field ("Repository")
	mutexField string // the mutex field name ("mu")
}

func (a *LockGuard) Run(pass *Pass) {
	// Pass 1: collect annotated fields across all packages, keyed by the
	// field's types.Object so access checks are exact, not name-based.
	guards := make(map[types.Object]guard)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					g, ok := guardAnnotation(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							guards[obj] = g
						}
					}
				}
				return true
			})
		}
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: every selector that resolves to a guarded field must sit in
	// a function that locks the guard mutex or is *Locked-suffixed.
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a.checkFunc(pass, pkg, fd, guards)
			}
		}
	}
}

func guardAnnotation(field *ast.Field) (guard, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return guard{guardType: m[1], mutexField: m[2]}, true
		}
	}
	return guard{}, false
}

func (a *LockGuard) checkFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl, guards map[types.Object]guard) {
	exemptByName := strings.HasSuffix(fd.Name.Name, "Locked")
	// locked collects the (guard type, mutex field) pairs this function
	// takes somewhere in its body — including inside deferred closures,
	// which is exactly the approximation documented above.
	var locked map[guard]bool
	lockedSet := func() map[guard]bool {
		if locked != nil {
			return locked
		}
		locked = make(map[guard]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			// Shape: <expr>.<mutexField>.Lock() where <expr>'s named type
			// is the guard type.
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := namedOf(pkg.Info.Types[inner.X].Type)
			if recv == nil {
				return true
			}
			locked[guard{guardType: recv.Obj().Name(), mutexField: inner.Sel.Name}] = true
			return true
		})
		return locked
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pkg.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		g, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		if exemptByName || lockedSet()[g] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s.%s, but %s neither locks it nor is named *Locked",
			selection.Obj().Name(), g.guardType, g.mutexField, fd.Name.Name)
		return true
	})
}
