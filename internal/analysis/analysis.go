package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one microvet finding, rendered as
// "file:line:col: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package under analysis. All
// packages of a run share one token.FileSet, and module-local imports
// resolve to the same *types.Package instances, so type identity holds
// across packages.
type Package struct {
	Path  string // import path ("micronets/internal/serve")
	Name  string
	Dir   string
	Files []*ast.File // non-test files only, as discovered by go list
	Types *types.Package
	Info  *types.Info
}

// Pass is the per-analyzer view of a run: every loaded package plus a
// report sink. Analyzers are module-scoped, not package-scoped, because
// several invariants (hot-path reachability, metric-name uniqueness)
// only exist across package boundaries.
type Pass struct {
	Fset *token.FileSet
	Pkgs []*Package

	report func(Diagnostic)
	name   string
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ErrorType is the universe error type, the thing droppederr looks for.
var ErrorType = types.Universe.Lookup("error").Type()

// Analyzer is one microvet check. Run receives every loaded package at
// once and reports findings through the pass.
type Analyzer interface {
	Name() string
	Doc() string
	Run(pass *Pass)
}

// DefaultAnalyzers returns the full microvet suite with the repository's
// production configuration.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewHotPathAlloc(),
		NewPreparedWrite(),
		NewDroppedErr(),
		NewLockGuard(),
		NewMetricName(),
		NewPkgDoc(),
	}
}

// ignoreDirective is one parsed `//microvet:ignore <analyzer> <reason>`
// comment. It blesses diagnostics from that analyzer on its own line and
// on the line directly below it (for comment-above style).
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
}

const (
	ignorePrefix = "microvet:ignore"
	// stopPrefix marks a function hotpathalloc must not traverse into: a
	// deliberate slow-path boundary (lazy construction, opt-in tracing).
	// Grammar: //microvet:hotpath-stop <reason>, on the func's doc.
	stopPrefix = "microvet:hotpath-stop"
)

// parseIgnores scans a file's comments for microvet:ignore directives,
// keyed by the line they bless. Directives missing a reason are reported
// as diagnostics themselves: a suppression without a why is review debt.
func parseIgnores(fset *token.FileSet, f *ast.File, report func(Diagnostic)) map[int][]ignoreDirective {
	out := make(map[int][]ignoreDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			if name == "" || reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "microvet",
					Message: "microvet:ignore needs an analyzer name and a reason: //microvet:ignore <analyzer> <why this is fine>"})
				continue
			}
			d := ignoreDirective{analyzer: name, reason: reason, pos: c.Pos()}
			// A directive blesses its own line (trailing style) and the
			// next line (comment-above style).
			out[pos.Line] = append(out[pos.Line], d)
			out[pos.Line+1] = append(out[pos.Line+1], d)
		}
	}
	return out
}

// Run executes the analyzers over the packages, applies suppression
// directives, and returns the surviving diagnostics sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var raw []Diagnostic
	sink := func(d Diagnostic) { raw = append(raw, d) }

	// Index suppressions per file up front; malformed directives report
	// straight into the sink and are never applied.
	ignores := make(map[string]map[int][]ignoreDirective)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			ignores[name] = parseIgnores(fset, f, sink)
		}
	}

	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkgs: pkgs, report: sink, name: a.Name()}
		a.Run(pass)
	}

	var out []Diagnostic
	for _, d := range raw {
		if suppressed(ignores, d) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func suppressed(ignores map[string]map[int][]ignoreDirective, d Diagnostic) bool {
	if d.Analyzer == "microvet" {
		return false // the suppression protocol itself cannot be suppressed
	}
	for _, dir := range ignores[d.Pos.Filename][d.Pos.Line] {
		if dir.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}

// ---- shared AST/type helpers used by several analyzers ----

// namedOf unwraps pointers and returns the *types.Named beneath a type,
// or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// qualifiedName renders a named type as "pkg/path.TypeName" ("" for nil
// or unnamed).
func qualifiedName(n *types.Named) string {
	if n == nil || n.Obj() == nil {
		return n.String()
	}
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// funcKey names a FuncDecl as "pkg/path.Func" or "pkg/path.Recv.Method"
// (pointer receivers stripped), the grammar hotpathalloc roots use.
func funcKey(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkgPath + "." + decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return pkgPath + "." + x.Name + "." + decl.Name.Name
		default:
			return pkgPath + ".?." + decl.Name.Name
		}
	}
}

// docHas reports whether a declaration's doc (or trailing line comment)
// contains a directive with the given prefix, returning its argument.
func docHas(doc *ast.CommentGroup, prefix string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(text, prefix)), true
		}
	}
	return "", false
}
