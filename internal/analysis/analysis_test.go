package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// expect is one golden diagnostic: file base name, line, analyzer.
type expect struct {
	file     string
	line     int
	analyzer string
}

var wantRE = regexp.MustCompile(`// want:([a-z]+)`)

// wantsFromFixture parses `// want:<analyzer>` end-of-line markers from
// every Go file in a fixture directory.
func wantsFromFixture(t *testing.T, dir string) map[expect]bool {
	t.Helper()
	out := make(map[expect]bool)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				out[expect{file: e.Name(), line: line, analyzer: m[1]}] = true
			}
		}
		f.Close()
	}
	return out
}

// runFixture loads the given testdata/src/<name> dirs as packages under
// fake micronets/internal/fixture/ paths and runs the analyzers.
func runFixture(t *testing.T, analyzers []Analyzer, names ...string) []Diagnostic {
	t.Helper()
	loader := NewLoader(".")
	var pkgs []*Package
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		pkg, err := loader.LoadDir(dir, "micronets/internal/fixture/"+name)
		if err != nil {
			t.Fatalf("load fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return Run(loader.Fset, pkgs, analyzers)
}

// checkGolden compares produced diagnostics against the fixture's want
// markers plus any extra expectations (for lines that can't carry a
// marker, like malformed suppression directives).
func checkGolden(t *testing.T, diags []Diagnostic, names []string, extra ...expect) {
	t.Helper()
	want := make(map[expect]bool)
	for _, name := range names {
		for e := range wantsFromFixture(t, filepath.Join("testdata", "src", name)) {
			want[e] = true
		}
	}
	for _, e := range extra {
		want[e] = true
	}
	got := make(map[expect]bool)
	for _, d := range diags {
		got[expect{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, analyzer: d.Analyzer}] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing diagnostic: %s:%d: %s", e.file, e.line, e.analyzer)
		}
	}
	for e := range got {
		if !want[e] {
			t.Errorf("unexpected diagnostic: %s:%d: %s", e.file, e.line, e.analyzer)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("produced: %s", d)
		}
	}
}

func TestDroppedErrFixture(t *testing.T) {
	names := []string{"dropped"}
	diags := runFixture(t, []Analyzer{NewDroppedErr()}, names...)
	// The reason-less directive in missingReason() is itself a finding;
	// it sits on its own line, which a marker comment cannot share.
	checkGolden(t, diags, names, expect{file: "dropped.go", line: 37, analyzer: "microvet"})
}

func TestMetricNameFixture(t *testing.T) {
	names := []string{"metricsa", "metricsb"}
	diags := runFixture(t, []Analyzer{NewMetricName()}, names...)
	checkGolden(t, diags, names)
}

func TestPkgDocFixture(t *testing.T) {
	names := []string{"nodoc"}
	a := &PkgDoc{Packages: []string{"fixture/nodoc"}}
	diags := runFixture(t, []Analyzer{a}, names...)
	checkGolden(t, diags, names)
}

func TestPreparedWriteFixture(t *testing.T) {
	names := []string{"prepared"}
	a := &PreparedWrite{
		Targets:       []string{"micronets/internal/fixture/prepared.PreparedModel"},
		AllowPrefixes: []string{"Prepare", "prepare"},
	}
	diags := runFixture(t, []Analyzer{a}, names...)
	checkGolden(t, diags, names)
}

func TestLockGuardFixture(t *testing.T) {
	names := []string{"locks"}
	diags := runFixture(t, []Analyzer{NewLockGuard()}, names...)
	checkGolden(t, diags, names)
}

func TestHotPathAllocFixture(t *testing.T) {
	names := []string{"hot"}
	a := &HotPathAlloc{
		Roots:             []string{"micronets/internal/fixture/hot.thing.Invoke"},
		ClosureContainers: []string{"micronets/internal/fixture/hot.bindIt"},
	}
	diags := runFixture(t, []Analyzer{a}, names...)
	checkGolden(t, diags, names)

	// The fixture's reachability set must prove the traversal rules: the
	// root, the static callee, the CHA-resolved interface method, the
	// package-var function, and NOT the stopped function.
	for _, key := range []string{
		"micronets/internal/fixture/hot.thing.Invoke",
		"micronets/internal/fixture/hot.thing.step",
		"micronets/internal/fixture/hot.fastEngine.run",
		"micronets/internal/fixture/hot.viaVar",
	} {
		if !a.Reachable[key] {
			t.Errorf("expected %s in the reachable set", key)
		}
	}
	if a.Reachable["micronets/internal/fixture/hot.cold"] {
		t.Error("hotpath-stop boundary was traversed: cold is in the reachable set")
	}
	if a.Reachable["micronets/internal/fixture/hot.bindIt"] {
		t.Error("closure container body must stay cold unless reached by a call edge")
	}
}

// TestRealTreeCleanAndCovered is the drift gate: the production suite
// must be clean on the real module, and the hotpathalloc reachability
// set must cover the same functions the AllocsPerRun benchmarks gate.
func TestRealTreeCleanAndCovered(t *testing.T) {
	loader := NewLoader(".")
	pkgs, err := loader.Load("micronets/...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	hot := NewHotPathAlloc()
	analyzers := []Analyzer{hot, NewPreparedWrite(), NewDroppedErr(), NewLockGuard(), NewMetricName(), NewPkgDoc()}
	diags := Run(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		t.Errorf("real tree not clean: %s", d)
	}
	for _, key := range []string{
		"micronets/internal/tflm.Interpreter.Invoke",
		"micronets/internal/tflm.Interpreter.InvokeBatchInto",
		"micronets/internal/serve.Batcher.flush",
		"micronets/internal/serve.Pool.Get",
		"micronets/internal/kernels.gemmStoreRows",
		"micronets/internal/kernels.gemmStoreRowsWide",
		"micronets/internal/kernels.gemmDensePanels",
		"micronets/internal/kernels.gemmDensePanelsWide",
		"micronets/internal/kernels.Conv2D",
		"micronets/internal/kernels.Parallel.For",
	} {
		if !hot.Reachable[key] {
			t.Errorf("hotpathalloc must cover %s (the AllocsPerRun gate measures it)", key)
		}
	}
}

// TestSuppressionScope verifies a blessing only silences its own
// analyzer: a droppederr ignore must not hide a hotpathalloc finding on
// the same line (exercised implicitly by every fixture above) and an
// unknown-analyzer ignore suppresses nothing.
func TestSuppressionScope(t *testing.T) {
	names := []string{"dropped"}
	// Run hotpathalloc over the dropped fixture: nothing is hot (no
	// roots match), so the only finding is the driver-level one for the
	// fixture's reason-less directive — which fires no matter which
	// analyzers run.
	diags := runFixture(t, []Analyzer{NewHotPathAlloc()}, names...)
	if len(diags) != 1 || diags[0].Analyzer != "microvet" {
		t.Errorf("hotpathalloc with no matching roots must only surface the malformed directive, got %v", diags)
	}
}
