package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricName enforces the PR 7 Prometheus exposition conventions on
// every metric string literal in the module:
//
//   - names follow micronets_<subsystem>_<name>[_<unit>] with a known
//     subsystem and [a-z0-9_] characters (no double or trailing
//     underscores),
//   - units are base units (seconds, bytes), never scaled ones (_ms,
//     _kb, _percent, ...),
//   - a metric family belongs to exactly one package — the same name
//     emitted from two packages would collide on the scrape page.
//
// Literals are scanned for embedded metric tokens, so HELP/TYPE lines
// and format strings ("micronets_serve_model_versions{model=%q} %d\n")
// are covered without any special casing.
type MetricName struct {
	// Prefix is the mandatory namespace prefix, "micronets_".
	Prefix string
	// Subsystems are the allowed <subsystem> segments.
	Subsystems []string
	// ForbiddenUnits are suffixes that indicate a scaled unit.
	ForbiddenUnits []string
}

// NewMetricName returns the analyzer with the production configuration.
func NewMetricName() *MetricName {
	return &MetricName{
		Prefix:     "micronets_",
		Subsystems: []string{"serve", "graph", "graphs", "mesh"},
		ForbiddenUnits: []string{
			"ms", "us", "ns", "millis", "micros", "nanos",
			"kb", "mb", "gb", "kib", "mib", "gib",
			"percent", "minutes", "hours",
		},
	}
}

func (*MetricName) Name() string { return "metricname" }
func (*MetricName) Doc() string {
	return "metric literals follow micronets_<subsystem>_<name>[_<unit>] and are unique per package"
}

// metricTokenRE requires at least one character after the namespace so
// the bare prefix string (this analyzer's own configuration) is not a
// token.
var metricTokenRE = regexp.MustCompile(`micronets_[A-Za-z0-9_]+`)

type metricSite struct {
	pkg string
	pos token.Pos
}

func (a *MetricName) Run(pass *Pass) {
	families := make(map[string][]metricSite)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				text, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				for _, idx := range metricTokenRE.FindAllStringIndex(text, -1) {
					tok := text[idx[0]:idx[1]]
					pos := lit.Pos() // literal start; precise enough for one-line literals
					if a.checkToken(pass, pos, tok) {
						families[tok] = append(families[tok], metricSite{pkg: pkg.Path, pos: pos})
					}
				}
				return true
			})
		}
	}

	// Cross-package uniqueness: a family emitted by more than one package
	// is a collision. Repetition inside one package is how exposition
	// writers work (HELP head + per-series rows) and is fine.
	var names []string
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := families[name]
		first := sites[0].pkg
		seen := map[string]bool{first: true}
		for _, s := range sites[1:] {
			if !seen[s.pkg] {
				seen[s.pkg] = true
				pass.Reportf(s.pos, "metric %s is already emitted by package %s; metric families must be unique across the module", name, first)
			}
		}
	}
}

// checkToken validates one metric token, reporting malformations. It
// returns true if the token is well-formed enough to take part in the
// uniqueness check.
func (a *MetricName) checkToken(pass *Pass, pos token.Pos, tok string) bool {
	rest := strings.TrimPrefix(tok, a.Prefix)
	if rest == "" {
		pass.Reportf(pos, "metric %q has no subsystem; want %s<subsystem>_<name>[_<unit>]", tok, a.Prefix)
		return false
	}
	if strings.ToLower(tok) != tok {
		pass.Reportf(pos, "metric %q has upper-case characters; metric names are lower_snake_case", tok)
		return false
	}
	if strings.Contains(tok, "__") || strings.HasSuffix(tok, "_") {
		pass.Reportf(pos, "metric %q has empty name segments; want %s<subsystem>_<name>[_<unit>]", tok, a.Prefix)
		return false
	}
	sub, name, ok := strings.Cut(rest, "_")
	if !ok || name == "" {
		pass.Reportf(pos, "metric %q is missing a name after the subsystem; want %s<subsystem>_<name>[_<unit>]", tok, a.Prefix)
		return false
	}
	if !contains(a.Subsystems, sub) {
		pass.Reportf(pos, "metric %q uses unknown subsystem %q (known: %s)", tok, sub, strings.Join(a.Subsystems, ", "))
		return false
	}
	segs := strings.Split(name, "_")
	last := segs[len(segs)-1]
	if contains(a.ForbiddenUnits, last) {
		pass.Reportf(pos, "metric %q ends in scaled unit %q; use base units (seconds, bytes) per the exposition conventions", tok, last)
		return false
	}
	return true
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
