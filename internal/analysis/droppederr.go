package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr flags `x, _ :=` and `_ =` discards of error values in the
// configured package subtree. The motivating bug (PR 4) was a
// `lat, _ :=` that silently zeroed a latency metric for weeks; errors in
// internal/ code must be handled, returned, logged, or blessed in place
// with //microvet:ignore droppederr <reason>.
//
// Comma-ok forms (type assertion, map index, channel receive) are exempt
// — their second value is a bool, and discarding it is the presence-check
// idiom. Declarations (`var _ Iface = x`) are compile-time interface
// checks, also exempt.
type DroppedErr struct {
	// PathPrefixes limits the check to packages whose import path starts
	// with one of these prefixes.
	PathPrefixes []string
}

// NewDroppedErr returns the analyzer with the production configuration.
func NewDroppedErr() *DroppedErr {
	return &DroppedErr{PathPrefixes: []string{"micronets/internal/"}}
}

func (*DroppedErr) Name() string { return "droppederr" }
func (*DroppedErr) Doc() string {
	return "no silently discarded error values in internal/ packages"
}

func (a *DroppedErr) Run(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if !hasPrefix(pkg.Path, a.PathPrefixes) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				a.checkAssign(pass, pkg, as)
				return true
			})
		}
	}
}

func (a *DroppedErr) checkAssign(pass *Pass, pkg *Package, as *ast.AssignStmt) {
	// Tuple form: n LHS, one RHS.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		switch unparen(as.Rhs[0]).(type) {
		case *ast.TypeAssertExpr, *ast.IndexExpr, *ast.UnaryExpr:
			return // comma-ok forms are exempt by design
		}
		tup, ok := pkg.Info.Types[as.Rhs[0]].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i < tup.Len() && isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				pass.Reportf(lhs.Pos(),
					"error value discarded with _; handle it or bless: //microvet:ignore droppederr <reason>")
			}
		}
		return
	}
	// Pairwise form, including plain `_ = f()`.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		t := pkg.Info.Types[as.Rhs[i]].Type
		if _, multi := t.(*types.Tuple); multi {
			continue // handled above; defensive
		}
		if isErrorType(t) {
			pass.Reportf(lhs.Pos(),
				"error value discarded with _; handle it or bless: //microvet:ignore droppederr <reason>")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the error interface or a concrete
// type that implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Identical(t, ErrorType) {
		return true
	}
	iface, _ := ErrorType.Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return types.Implements(t, iface)
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
