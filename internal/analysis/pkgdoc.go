package analysis

import (
	"strings"
)

// PkgDoc ports scripts/docs_lint.sh: every first-class package must
// carry a `// Package <name> ...` doc comment attached to a package
// clause (conventionally in doc.go). This is the CI teeth behind
// docs/ARCHITECTURE.md — a package can't join the public story without
// documenting itself.
type PkgDoc struct {
	// Packages lists the import paths (relative to the module root, e.g.
	// "internal/kernels") that must be documented. Paths not loaded in
	// the current run are ignored, so partial loads (fixtures) work.
	Packages []string
}

// NewPkgDoc returns the analyzer with the production package list: the
// docs_lint.sh set plus the packages added since.
func NewPkgDoc() *PkgDoc {
	return &PkgDoc{Packages: []string{
		"internal/analysis",
		"internal/graph",
		"internal/kernels",
		"internal/mcu",
		"internal/mesh",
		"internal/obs",
		"internal/search",
		"internal/serve",
		"internal/servegraph",
		"internal/tflm",
		"internal/zoo",
	}}
}

func (*PkgDoc) Name() string { return "pkgdoc" }
func (*PkgDoc) Doc() string {
	return "first-class packages must have a package doc comment"
}

func (a *PkgDoc) Run(pass *Pass) {
	required := make(map[string]bool, len(a.Packages))
	for _, p := range a.Packages {
		required[p] = true
	}
	for _, pkg := range pass.Pkgs {
		// Match on the path suffix so both real module paths
		// ("micronets/internal/serve") and fixture paths resolve.
		var matched bool
		for _, p := range a.Packages {
			if pkg.Path == p || strings.HasSuffix(pkg.Path, "/"+p) {
				matched = true
				break
			}
		}
		if !matched || len(pkg.Files) == 0 {
			continue
		}
		ok := false
		for _, f := range pkg.Files {
			if f.Doc == nil {
				continue
			}
			// The comment must introduce this package by name, not float
			// free ("// Package serve ...").
			if strings.HasPrefix(f.Doc.Text(), "Package "+pkg.Name+" ") {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(pkg.Files[0].Package,
				"package %s has no '// Package %s ...' doc comment (add a doc.go)", pkg.Path, pkg.Name)
		}
	}
}
