// Package locks seeds lockguard violations for the analyzer tests.
package locks

import "sync"

// Counter mirrors the repository convention: n may only be touched under
// Counter.mu.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by Counter.mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) ReadRLockedStyle() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// nLocked follows the caller-holds-the-lock naming convention.
func (c *Counter) nLocked() int { return c.n }

func (c *Counter) sneakyRead() int {
	return c.n // want:lockguard
}

func (c *Counter) sneakyWrite(v int) {
	c.n = v // want:lockguard
}

func construct() *Counter {
	return &Counter{n: 1} // composite literals are construction, exempt
}

func blessed(c *Counter) int {
	return c.n //microvet:ignore lockguard fixture: suppression must hold
}
