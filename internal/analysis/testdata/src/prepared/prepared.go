// Package prepared seeds preparedwrite violations for the analyzer tests.
package prepared

// PreparedModel mimics the immutable-after-construction kernel state.
type PreparedModel struct {
	Mults []int32
	n     int
}

// PrepareIt is the construction path: writes here are allowed.
func PrepareIt() *PreparedModel {
	p := &PreparedModel{Mults: make([]int32, 4)}
	p.n = 2
	for i := range p.Mults {
		p.Mults[i] = int32(i)
	}
	return p
}

func mutate(p *PreparedModel) {
	p.n = 3        // want:preparedwrite
	p.Mults[0] = 1 // want:preparedwrite
	p.n++          // want:preparedwrite
}

func reads(p *PreparedModel) int32 {
	return p.Mults[p.n] // reads are fine
}

func blessed(p *PreparedModel) {
	p.n = 4 //microvet:ignore preparedwrite fixture: suppression must hold
}
