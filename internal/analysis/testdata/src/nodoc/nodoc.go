package nodoc // want:pkgdoc

// Note there is deliberately no "Package nodoc ..." doc comment here.
var _ = 0
