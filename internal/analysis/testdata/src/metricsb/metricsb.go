// Package metricsb re-emits a family owned by metricsa, which the
// cross-package uniqueness rule must reject.
package metricsb

const stolen = "micronets_serve_fixture_shared_total" // want:metricname
