// Package hot seeds hotpathalloc violations for the analyzer tests. The
// test configures Invoke as the root and bindIt as a closure container.
package hot

import "fmt"

type thing struct {
	buf   []int8
	steps []func()
}

type engine interface{ run() }

type fastEngine struct{}

func (fastEngine) run() {
	_ = fmt.Sprint("boxed") // want:hotpathalloc
}

// table makes viaVar reachable through the package-var-initializer rule
// once this package contains hot code.
var table = map[string]func(){"v": viaVar}

var prefix = "a"

func viaVar() {
	s := prefix + "b" // want:hotpathalloc
	_ = s
	c := "a" + "b" // constant-folded: never reaches runtime, unreported
	_ = c
}

// Invoke is the fixture root.
func (t *thing) Invoke() {
	t.step()
	var e engine = fastEngine{}
	e.run() // interface call: CHA must reach fastEngine.run
	for _, s := range t.steps {
		s()
	}
	cold()
}

func (t *thing) step() {
	t.buf = make([]int8, 4)              // want:hotpathalloc
	t.steps = append(t.steps, func() {}) // want:hotpathalloc
	m := map[string]int{"k": 1}          // want:hotpathalloc
	_ = m
	bs := []byte("conv") // want:hotpathalloc
	_ = bs
	blessedAlloc()
}

func blessedAlloc() {
	_ = make([]int, 2) //microvet:ignore hotpathalloc fixture: suppression must hold
}

//microvet:hotpath-stop fixture: construction helper the traversal must not cross
func cold() {
	_ = make([]int, 8) // unreported: behind the stop boundary
}

// bindIt is the fixture closure container: its body is bind-time code,
// the literal it returns runs per invoke.
func bindIt(n int) func() {
	prep := make([]int8, n) // bind-time allocation: container bodies are cold
	return func() {
		sink(append(prep, 1)) // want:hotpathalloc
	}
}

func sink([]int8) {}
