// Package dropped seeds droppederr violations for the analyzer tests.
package dropped

import "errors"

func mk() (int, error) { return 1, errors.New("x") }

func tupleDiscard() int {
	v, _ := mk() // want:droppederr
	return v
}

func plainDiscard() {
	_ = errors.New("y") // want:droppederr
}

func commaOkExempt(m map[string]error, x interface{}) error {
	_, ok := m["k"] // map comma-ok: exempt even though the value is an error
	_ = ok
	s, _ := x.(string) // type-assert comma-ok: exempt
	_ = s
	ch := make(chan error, 1)
	v, _ := <-ch // channel comma-ok: exempt
	return v
}

func blessed() {
	_, _ = mk() //microvet:ignore droppederr fixture: suppression on the same line must hold
}

func blessedAbove() {
	//microvet:ignore droppederr fixture: suppression on the line above must hold
	_, _ = mk()
}

func missingReason() {
	//microvet:ignore droppederr
	_, _ = mk() // want:droppederr
}
