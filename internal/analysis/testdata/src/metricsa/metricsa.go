// Package metricsa seeds metricname violations for the analyzer tests.
package metricsa

const (
	good      = "micronets_serve_fixture_requests_total"
	meshOK    = "micronets_mesh_fixture_spills_total" // fleet tier subsystem is whitelisted
	inFormat  = "# HELP micronets_serve_fixture_latency_seconds scrape head\n"
	duplicate = "micronets_serve_fixture_shared_total" // canonical home of the family

	badSubsystem = "micronets_warehouse_requests_total" // want:metricname
	scaledUnit   = "micronets_serve_fixture_latency_ms" // want:metricname
	doubleUnder  = "micronets_serve__fixture_total"     // want:metricname
	noName       = "micronets_serve"                    // want:metricname
)
