// Package tensor implements dense float32 tensors in row-major layout and
// the raw numeric kernels (matmul, im2col convolution, pooling, reductions)
// on which the autograd and nn packages are built.
//
// Tensors are the training-time substrate of the reproduction: the paper
// trains its supernets in TensorFlow, and since no mature Go training
// framework exists this package supplies the equivalent primitives from
// scratch using only the standard library.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// A Tensor with an empty shape is a scalar holding one element.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New creates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := NumElems(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Scalar returns a 0-dim tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{Shape: []int{}, Data: []float32{v}}
}

// NumElems returns the product of the dimensions in shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i, supporting negative indices.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape covering the same data.
// One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.Len()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = t.Len() / known
	}
	if NumElems(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Fill sets every element of t to v and returns t.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v{n=%d}", t.Shape, t.Len())
}

// Randn fills a new tensor with N(0, stddev) samples from rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * stddev)
	}
	return t
}

// RandUniform fills a new tensor with U[lo, hi) samples from rng.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// Add returns a+b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a*b elementwise.
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a*s.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace accumulates src into dst elementwise.
func AddInPlace(dst, src *Tensor) {
	checkSameShape("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AxpyInPlace computes dst += alpha*src.
func AxpyInPlace(dst *Tensor, alpha float32, src *Tensor) {
	checkSameShape("AxpyInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// Sum returns the sum of all elements.
func Sum(a *Tensor) float32 {
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(a *Tensor) float32 {
	if a.Len() == 0 {
		return 0
	}
	return Sum(a) / float32(a.Len())
}

// Max returns the maximum element; panics on empty tensors.
func Max(a *Tensor) float32 {
	if a.Len() == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; panics on empty tensors.
func Min(a *Tensor) float32 {
	if a.Len() == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func ArgMax(a *Tensor) int {
	if a.Len() == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := a.Data[0], 0
	for i, v := range a.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Apply returns f mapped elementwise over a.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Dot returns the inner product of two equal-shaped tensors.
func Dot(a, b *Tensor) float32 {
	checkSameShape("Dot", a, b)
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return float32(s)
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a *Tensor) float32 {
	var s float64
	for _, v := range a.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

func checkSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// MatMul returns a@b for 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// ikj loop order: streams through b and out rows for cache friendliness.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT returns a@bᵀ for 2-D tensors a [m,k] and b [n,k].
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// TMatMul returns aᵀ@b for 2-D tensors a [k,m] and b [k,n].
func TMatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: TMatMul needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D needs a 2-D tensor, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
