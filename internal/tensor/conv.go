package tensor

import "fmt"

// ConvSpec describes a 2-D convolution in NHWC layout.
type ConvSpec struct {
	KH, KW    int // kernel height/width
	SH, SW    int // strides
	PadTop    int
	PadBottom int
	PadLeft   int
	PadRight  int
}

// SamePadding returns the TensorFlow "SAME" padding for the given input
// size, kernel size and stride.
func SamePadding(in, k, s int) (before, after int) {
	var outSize int
	if in%s == 0 {
		outSize = in / s
	} else {
		outSize = in/s + 1
	}
	pad := (outSize-1)*s + k - in
	if pad < 0 {
		pad = 0
	}
	return pad / 2, pad - pad/2
}

// Same returns a ConvSpec with TensorFlow-SAME padding for an input of the
// given spatial size.
func Same(kh, kw, sh, sw, inH, inW int) ConvSpec {
	pt, pb := SamePadding(inH, kh, sh)
	pl, pr := SamePadding(inW, kw, sw)
	return ConvSpec{KH: kh, KW: kw, SH: sh, SW: sw, PadTop: pt, PadBottom: pb, PadLeft: pl, PadRight: pr}
}

// OutSize returns the output spatial dimensions for an input of (h, w).
func (c ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+c.PadTop+c.PadBottom-c.KH)/c.SH + 1
	ow = (w+c.PadLeft+c.PadRight-c.KW)/c.SW + 1
	return oh, ow
}

// Im2Col unrolls x [n,h,w,c] into a matrix [n*oh*ow, kh*kw*c] so that a
// convolution becomes a matmul with a [kh*kw*c, outC] weight matrix. This is
// the same strategy CMSIS-NN uses on the MCU (and whose overhead the paper's
// Figure 3 attributes depthwise slowness to).
func Im2Col(x *Tensor, spec ConvSpec) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col needs NHWC input, got %v", x.Shape))
	}
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, w)
	cols := New(n*oh*ow, spec.KH*spec.KW*c)
	row := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.Data[row*cols.Shape[1] : (row+1)*cols.Shape[1]]
				di := 0
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							src := x.Data[((b*h+iy)*w+ix)*c : ((b*h+iy)*w+ix+1)*c]
							copy(dst[di:di+c], src)
						}
						// else: leave zeros (padding)
						di += c
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters the column matrix back into
// an NHWC tensor of the given shape, accumulating overlaps. It is used by
// the convolution backward pass.
func Col2Im(cols *Tensor, spec ConvSpec, n, h, w, c int) *Tensor {
	oh, ow := spec.OutSize(h, w)
	if cols.Shape[0] != n*oh*ow || cols.Shape[1] != spec.KH*spec.KW*c {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch %v for output %dx%dx%dx%d", cols.Shape, n, h, w, c))
	}
	x := New(n, h, w, c)
	row := 0
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.Data[row*cols.Shape[1] : (row+1)*cols.Shape[1]]
				si := 0
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst := x.Data[((b*h+iy)*w+ix)*c : ((b*h+iy)*w+ix+1)*c]
							for j := 0; j < c; j++ {
								dst[j] += src[si+j]
							}
						}
						si += c
					}
				}
				row++
			}
		}
	}
	return x
}

// Conv2D computes a standard 2-D convolution. x is [n,h,w,inC] and w is
// [kh,kw,inC,outC]; the result is [n,oh,ow,outC].
func Conv2D(x, wgt *Tensor, spec ConvSpec) *Tensor {
	if len(wgt.Shape) != 4 || wgt.Shape[0] != spec.KH || wgt.Shape[1] != spec.KW {
		panic(fmt.Sprintf("tensor: Conv2D weight shape %v does not match spec %+v", wgt.Shape, spec))
	}
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if wgt.Shape[2] != c {
		panic(fmt.Sprintf("tensor: Conv2D input channels %d != weight inC %d", c, wgt.Shape[2]))
	}
	outC := wgt.Shape[3]
	oh, ow := spec.OutSize(h, w)
	cols := Im2Col(x, spec)
	wmat := wgt.Reshape(spec.KH*spec.KW*c, outC)
	y := MatMul(cols, wmat)
	return y.Reshape(n, oh, ow, outC)
}

// DepthwiseConv2D computes a depthwise convolution with multiplier 1.
// x is [n,h,w,c], wgt is [kh,kw,c]; the result is [n,oh,ow,c].
func DepthwiseConv2D(x, wgt *Tensor, spec ConvSpec) *Tensor {
	if len(wgt.Shape) != 3 || wgt.Shape[0] != spec.KH || wgt.Shape[1] != spec.KW {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D weight shape %v does not match spec %+v", wgt.Shape, spec))
	}
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if wgt.Shape[2] != c {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D channels %d != weight c %d", c, wgt.Shape[2]))
	}
	oh, ow := spec.OutSize(h, w)
	y := New(n, oh, ow, c)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := y.Data[((b*oh+oy)*ow+ox)*c : ((b*oh+oy)*ow+ox+1)*c]
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						src := x.Data[((b*h+iy)*w+ix)*c : ((b*h+iy)*w+ix+1)*c]
						ker := wgt.Data[(ky*spec.KW+kx)*c : (ky*spec.KW+kx+1)*c]
						for j := 0; j < c; j++ {
							dst[j] += src[j] * ker[j]
						}
					}
				}
			}
		}
	}
	return y
}

// DepthwiseConv2DBackward returns the gradients of a depthwise convolution
// with respect to its input and weights given upstream gradient dy.
func DepthwiseConv2DBackward(x, wgt, dy *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, w)
	dx = New(n, h, w, c)
	dw = New(spec.KH, spec.KW, c)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := dy.Data[((b*oh+oy)*ow+ox)*c : ((b*oh+oy)*ow+ox+1)*c]
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						xoff := ((b*h+iy)*w + ix) * c
						koff := (ky*spec.KW + kx) * c
						for j := 0; j < c; j++ {
							dx.Data[xoff+j] += g[j] * wgt.Data[koff+j]
							dw.Data[koff+j] += g[j] * x.Data[xoff+j]
						}
					}
				}
			}
		}
	}
	return dx, dw
}

// AvgPool2D computes average pooling over non-overlapping-or-strided
// windows. x is [n,h,w,c].
func AvgPool2D(x *Tensor, spec ConvSpec) *Tensor {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, w)
	y := New(n, oh, ow, c)
	inv := 1.0 / float32(spec.KH*spec.KW)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := y.Data[((b*oh+oy)*ow+ox)*c : ((b*oh+oy)*ow+ox+1)*c]
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						src := x.Data[((b*h+iy)*w+ix)*c : ((b*h+iy)*w+ix+1)*c]
						for j := 0; j < c; j++ {
							dst[j] += src[j]
						}
					}
				}
				for j := 0; j < c; j++ {
					dst[j] *= inv
				}
			}
		}
	}
	return y
}

// AvgPool2DBackward distributes the upstream gradient uniformly over each
// pooling window.
func AvgPool2DBackward(x, dy *Tensor, spec ConvSpec) *Tensor {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, w)
	dx := New(n, h, w, c)
	inv := 1.0 / float32(spec.KH*spec.KW)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := dy.Data[((b*oh+oy)*ow+ox)*c : ((b*oh+oy)*ow+ox+1)*c]
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						dst := dx.Data[((b*h+iy)*w+ix)*c : ((b*h+iy)*w+ix+1)*c]
						for j := 0; j < c; j++ {
							dst[j] += g[j] * inv
						}
					}
				}
			}
		}
	}
	return dx
}

// MaxPool2D computes max pooling and additionally returns the argmax flat
// indices into x for use by the backward pass.
func MaxPool2D(x *Tensor, spec ConvSpec) (*Tensor, []int) {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, w)
	y := New(n, oh, ow, c)
	arg := make([]int, y.Len())
	negInf := float32(-3.4e38)
	for i := range y.Data {
		y.Data[i] = negInf
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				base := ((b*oh+oy)*ow + ox) * c
				for ky := 0; ky < spec.KH; ky++ {
					iy := oy*spec.SH + ky - spec.PadTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KW; kx++ {
						ix := ox*spec.SW + kx - spec.PadLeft
						if ix < 0 || ix >= w {
							continue
						}
						xoff := ((b*h+iy)*w + ix) * c
						for j := 0; j < c; j++ {
							if x.Data[xoff+j] > y.Data[base+j] {
								y.Data[base+j] = x.Data[xoff+j]
								arg[base+j] = xoff + j
							}
						}
					}
				}
			}
		}
	}
	return y, arg
}

// MaxPool2DBackward routes each upstream gradient element to the argmax
// location recorded during the forward pass.
func MaxPool2DBackward(xShape []int, arg []int, dy *Tensor) *Tensor {
	dx := New(xShape...)
	for i, g := range dy.Data {
		dx.Data[arg[i]] += g
	}
	return dx
}

// BilinearResize resizes an NHWC tensor to (outH, outW) using bilinear
// interpolation with align-corners=false semantics, matching the paper's
// spectrogram down-sampling for anomaly detection (64x64 -> 32x32).
func BilinearResize(x *Tensor, outH, outW int) *Tensor {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := New(n, outH, outW, c)
	scaleY := float64(h) / float64(outH)
	scaleX := float64(w) / float64(outW)
	for b := 0; b < n; b++ {
		for oy := 0; oy < outH; oy++ {
			sy := (float64(oy)+0.5)*scaleY - 0.5
			y0 := int(sy)
			if sy < 0 {
				y0 = 0
				sy = 0
			}
			y1 := y0 + 1
			if y1 >= h {
				y1 = h - 1
			}
			fy := float32(sy - float64(y0))
			for ox := 0; ox < outW; ox++ {
				sx := (float64(ox)+0.5)*scaleX - 0.5
				x0 := int(sx)
				if sx < 0 {
					x0 = 0
					sx = 0
				}
				x1 := x0 + 1
				if x1 >= w {
					x1 = w - 1
				}
				fx := float32(sx - float64(x0))
				dst := y.Data[((b*outH+oy)*outW+ox)*c : ((b*outH+oy)*outW+ox+1)*c]
				p00 := x.Data[((b*h+y0)*w+x0)*c : ((b*h+y0)*w+x0+1)*c]
				p01 := x.Data[((b*h+y0)*w+x1)*c : ((b*h+y0)*w+x1+1)*c]
				p10 := x.Data[((b*h+y1)*w+x0)*c : ((b*h+y1)*w+x0+1)*c]
				p11 := x.Data[((b*h+y1)*w+x1)*c : ((b*h+y1)*w+x1+1)*c]
				for j := 0; j < c; j++ {
					top := p00[j] + (p01[j]-p00[j])*fx
					bot := p10[j] + (p11[j]-p10[j])*fx
					dst[j] = top + (bot-top)*fy
				}
			}
		}
	}
	return y
}
