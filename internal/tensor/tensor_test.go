package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestNewAndShape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.Dim(0) != 2 || a.Dim(-1) != 4 {
		t.Fatalf("Dim lookup wrong: %d %d", a.Dim(0), a.Dim(-1))
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if a.At(2, 1) != 7.5 {
		t.Fatalf("At(2,1) = %v", a.At(2, 1))
	}
	if a.Data[2*4+1] != 7.5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeInferred(t *testing.T) {
	a := New(2, 3, 4)
	b := a.Reshape(6, -1)
	if b.Shape[0] != 6 || b.Shape[1] != 4 {
		t.Fatalf("Reshape inferred %v", b.Shape)
	}
	b.Data[0] = 9
	if a.Data[0] != 9 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for impossible reshape")
		}
	}()
	New(2, 3).Reshape(4, -1)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data[3]; got != 12 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data[0]; got != 4 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data[1]; got != 12 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data[2]; got != 6 {
		t.Fatalf("Scale = %v", got)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{3, -1, 4, 1}, 4)
	if Sum(a) != 7 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 1.75 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Max(a) != 4 || Min(a) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(a), Min(a))
	}
	if ArgMax(a) != 2 {
		t.Fatalf("ArgMax = %d", ArgMax(a))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 5)
	b := Randn(rng, 1, 5, 3)
	base := MatMul(a, b)
	viaT := MatMulT(a, Transpose2D(b))
	viaTM := TMatMul(Transpose2D(a), b)
	for i := range base.Data {
		if !almostEq(base.Data[i], viaT.Data[i], 1e-4) {
			t.Fatalf("MatMulT disagrees at %d: %v vs %v", i, base.Data[i], viaT.Data[i])
		}
		if !almostEq(base.Data[i], viaTM.Data[i], 1e-4) {
			t.Fatalf("TMatMul disagrees at %d: %v vs %v", i, base.Data[i], viaTM.Data[i])
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose2D(a)
	if b.Shape[0] != 3 || b.Shape[1] != 2 {
		t.Fatalf("shape %v", b.Shape)
	}
	if b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
}

// naiveConv2D is an independent direct implementation used to validate the
// im2col fast path.
func naiveConv2D(x, wgt *Tensor, spec ConvSpec) *Tensor {
	n, h, w, c := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC := wgt.Shape[3]
	oh, ow := spec.OutSize(h, w)
	y := New(n, oh, ow, outC)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < outC; oc++ {
					var s float32
					for ky := 0; ky < spec.KH; ky++ {
						for kx := 0; kx < spec.KW; kx++ {
							iy := oy*spec.SH + ky - spec.PadTop
							ix := ox*spec.SW + kx - spec.PadLeft
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							for ic := 0; ic < c; ic++ {
								s += x.At(b, iy, ix, ic) * wgt.At(ky, kx, ic, oc)
							}
						}
					}
					y.Set(s, b, oy, ox, oc)
				}
			}
		}
	}
	return y
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 2, 5, 6, 3)
	wgt := Randn(rng, 1, 3, 3, 3, 4)
	spec := Same(3, 3, 2, 2, 5, 6)
	got := Conv2D(x, wgt, spec)
	want := naiveConv2D(x, wgt, spec)
	if !SameShape(got, want) {
		t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-3) {
			t.Fatalf("conv mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestConv2DValidPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := Randn(rng, 1, 1, 4, 4, 2)
	wgt := Randn(rng, 1, 3, 3, 2, 1)
	spec := ConvSpec{KH: 3, KW: 3, SH: 1, SW: 1}
	y := Conv2D(x, wgt, spec)
	if y.Shape[1] != 2 || y.Shape[2] != 2 {
		t.Fatalf("valid conv output shape %v", y.Shape)
	}
}

func TestDepthwiseConvMatchesPerChannelConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 1, 5, 5, 3)
	dwW := Randn(rng, 1, 3, 3, 3)
	spec := Same(3, 3, 1, 1, 5, 5)
	got := DepthwiseConv2D(x, dwW, spec)
	// Build an equivalent grouped standard conv per channel.
	for ch := 0; ch < 3; ch++ {
		xc := New(1, 5, 5, 1)
		for i := 0; i < 25; i++ {
			xc.Data[i] = x.Data[i*3+ch]
		}
		wc := New(3, 3, 1, 1)
		for i := 0; i < 9; i++ {
			wc.Data[i] = dwW.Data[i*3+ch]
		}
		yc := Conv2D(xc, wc, spec)
		for i := 0; i < 25; i++ {
			if !almostEq(yc.Data[i], got.Data[i*3+ch], 1e-4) {
				t.Fatalf("dw ch %d mismatch at %d: %v vs %v", ch, i, yc.Data[i], got.Data[i*3+ch])
			}
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property that
	// makes the conv backward pass correct.
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 1, 1, 4, 5, 2)
	spec := Same(3, 3, 2, 2, 4, 5)
	cx := Im2Col(x, spec)
	y := Randn(rng, 1, cx.Shape[0], cx.Shape[1])
	lhs := Dot(cx, y)
	rhs := Dot(x, Col2Im(y, spec, 1, 4, 5, 2))
	if !almostEq(lhs, rhs, 1e-2) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAvgPoolValues(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	spec := ConvSpec{KH: 2, KW: 2, SH: 2, SW: 2}
	y := AvgPool2D(x, spec)
	if y.Len() != 1 || y.Data[0] != 2.5 {
		t.Fatalf("avgpool = %v", y.Data)
	}
}

func TestMaxPoolAndBackward(t *testing.T) {
	x := FromSlice([]float32{1, 5, 3, 4}, 1, 2, 2, 1)
	spec := ConvSpec{KH: 2, KW: 2, SH: 2, SW: 2}
	y, arg := MaxPool2D(x, spec)
	if y.Data[0] != 5 {
		t.Fatalf("maxpool = %v", y.Data[0])
	}
	dy := FromSlice([]float32{2}, 1, 1, 1, 1)
	dx := MaxPool2DBackward(x.Shape, arg, dy)
	if dx.Data[1] != 2 || dx.Data[0] != 0 {
		t.Fatalf("maxpool backward = %v", dx.Data)
	}
}

func TestSamePaddingMatchesTF(t *testing.T) {
	cases := []struct{ in, k, s, outWant int }{
		{49, 3, 2, 25},
		{10, 3, 2, 5},
		{32, 3, 1, 32},
		{5, 3, 2, 3},
	}
	for _, c := range cases {
		spec := Same(c.k, c.k, c.s, c.s, c.in, c.in)
		oh, _ := spec.OutSize(c.in, c.in)
		if oh != c.outWant {
			t.Fatalf("SAME out for in=%d k=%d s=%d: got %d want %d", c.in, c.k, c.s, oh, c.outWant)
		}
	}
}

func TestBilinearResizeConstant(t *testing.T) {
	x := New(1, 8, 8, 2).Fill(3)
	y := BilinearResize(x, 4, 4)
	for _, v := range y.Data {
		if !almostEq(v, 3, 1e-5) {
			t.Fatalf("constant image must stay constant, got %v", v)
		}
	}
}

func TestBilinearResizePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 1, 1, 16, 16, 1)
	y := BilinearResize(x, 8, 8)
	if !almostEq(Mean(x), Mean(y), 0.08) {
		t.Fatalf("mean shifted: %v vs %v", Mean(x), Mean(y))
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		a := FromSlice(append([]float32(nil), vals...), len(vals))
		b := FromSlice(reverse(vals), len(vals))
		ab, ba := Add(a, b), Add(b, a)
		for i := range ab.Data {
			x, y := ab.Data[i], ba.Data[i]
			if x != y && !(math.IsNaN(float64(x)) && math.IsNaN(float64(y))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func reverse(v []float32) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[len(v)-1-i] = x
	}
	return out
}

func TestQuickScaleLinearity(t *testing.T) {
	f := func(raw []float32, s float32) bool {
		if len(raw) == 0 || s != s || s > 1e18 || s < -1e18 {
			return true
		}
		for _, v := range raw {
			if v != v || v > 1e18 || v < -1e18 {
				return true
			}
		}
		a := FromSlice(append([]float32(nil), raw...), len(raw))
		left := Scale(Add(a, a), s)
		right := Add(Scale(a, s), Scale(a, s))
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-2+abs32(left.Data[i])*1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
