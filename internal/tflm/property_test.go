package tflm

import (
	"math/rand"
	"testing"

	"micronets/internal/arch"
	"micronets/internal/core"
	"micronets/internal/graph"
	"micronets/internal/zoo"
)

// lowerZoo lowers a servable zoo model with synthetic weights (no softmax,
// so op/MAC accounting lines up 1:1 with arch.Analyze).
func lowerZoo(t *testing.T, name string) (*arch.Spec, *graph.Model) {
	t.Helper()
	e, err := zoo.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return e.Spec, m
}

// maxOpWorkingSetBytes is the planner-independent lower bound on any valid
// arena: at the moment an op runs, its (distinct) input tensors and its
// output are all live, so their aligned buffers must coexist.
func maxOpWorkingSetBytes(m *graph.Model, batch int) int {
	max := 0
	for _, op := range m.Ops {
		seen := map[int]bool{op.Output: true}
		ws := alignUp(batch * m.Tensors[op.Output].Bytes())
		for _, in := range op.Inputs {
			if !seen[in] {
				seen[in] = true
				ws += alignUp(batch * m.Tensors[in].Bytes())
			}
		}
		if ws > max {
			max = ws
		}
	}
	return max
}

// naiveBatchBytes is the no-reuse upper bound at a given batch size.
func naiveBatchBytes(m *graph.Model, batch int) int {
	s := 0
	for _, t := range m.Tensors {
		s += alignUp(batch * t.Bytes())
	}
	return s
}

// TestPlanBatchMonotonicAndBounded pins the planner properties the search
// harness and serving capacity planning rely on, across every servable
// zoo architecture: arena bytes are monotonically non-decreasing in batch
// size, never below the largest single-op working set, never above the
// no-reuse sum, and every plan keeps the non-overlap invariant.
func TestPlanBatchMonotonicAndBounded(t *testing.T) {
	for _, name := range zoo.ServableNames() {
		t.Run(name, func(t *testing.T) {
			_, m := lowerZoo(t, name)
			prev := 0
			for batch := 1; batch <= 4; batch++ {
				plan, err := PlanMemoryBatch(m, batch)
				if err != nil {
					t.Fatal(err)
				}
				if err := plan.Verify(); err != nil {
					t.Fatal(err)
				}
				if plan.ArenaBytes < prev {
					t.Fatalf("arena not monotonic in batch: batch %d -> %d bytes, batch %d -> %d",
						batch-1, prev, batch, plan.ArenaBytes)
				}
				if lb := maxOpWorkingSetBytes(m, batch); plan.ArenaBytes < lb {
					t.Fatalf("batch %d: arena %d below max single-op working set %d", batch, plan.ArenaBytes, lb)
				}
				if ub := naiveBatchBytes(m, batch); plan.ArenaBytes > ub {
					t.Fatalf("batch %d: arena %d above no-reuse bound %d", batch, plan.ArenaBytes, ub)
				}
				prev = plan.ArenaBytes
			}
		})
	}
	if _, err := PlanMemoryBatch(&graph.Model{}, 0); err == nil {
		t.Fatal("batch 0 must be rejected")
	}
}

// TestPlanBatchRandomChains repeats the monotonicity/lower-bound property
// over randomly sampled DS-CNN-style chains, so it holds for the shapes a
// NAS run visits and not only the curated zoo.
func TestPlanBatchRandomChains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		spec := &arch.Spec{
			Name: "rand-chain", Task: "kws", Source: "repro",
			InputH: 8 + rng.Intn(24), InputW: 4 + rng.Intn(12), InputC: 1,
			NumClasses: 4,
		}
		spec.Blocks = append(spec.Blocks, arch.Block{
			Kind: arch.Conv, KH: 3, KW: 3, OutC: 4 * (1 + rng.Intn(8)), Stride: 1,
		})
		for n := rng.Intn(4); n > 0; n-- {
			stride := 1
			if rng.Intn(3) == 0 {
				stride = 2
			}
			spec.Blocks = append(spec.Blocks, arch.Block{
				Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 4 * (1 + rng.Intn(8)), Stride: stride,
			})
		}
		spec.Blocks = append(spec.Blocks,
			arch.Block{Kind: arch.GlobalPool},
			arch.Block{Kind: arch.Dense, OutC: 4})
		m, err := graph.FromSpec(spec, rng, graph.LowerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for batch := 1; batch <= 3; batch++ {
			plan, err := PlanMemoryBatch(m, batch)
			if err != nil {
				t.Fatal(err)
			}
			if plan.ArenaBytes < prev {
				t.Fatalf("trial %d: arena shrank with batch (%d -> %d)", trial, prev, plan.ArenaBytes)
			}
			if lb := maxOpWorkingSetBytes(m, batch); plan.ArenaBytes < lb {
				t.Fatalf("trial %d batch %d: arena %d below working-set bound %d", trial, batch, plan.ArenaBytes, lb)
			}
			prev = plan.ArenaBytes
		}
	}
}

// TestConstraintsAgreeWithPlanner pins the post-refactor contract between
// core.Constraints (byte-denominated DNAS budgets) and the tflm planner's
// byte accounting, on every servable zoo model:
//
//   - the analytic weight/op accounting (arch.Analyze) matches the lowered
//     model exactly, so a weight-bytes or ops budget means the same thing
//     to the DNAS penalty and to the deployed model;
//   - budgets set to the planner-reported usage pass CheckBytes, and
//     budgets set just below it are reported as violations;
//   - for chain architectures (no residual adds) the analytic working-set
//     proxy upper-bounds the planned arena, so a spec the relaxed search
//     deems SRAM-feasible stays feasible once actually planned.
func TestConstraintsAgreeWithPlanner(t *testing.T) {
	for _, name := range zoo.ServableNames() {
		t.Run(name, func(t *testing.T) {
			spec, m := lowerZoo(t, name)
			a, err := spec.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := PlanMemory(m)
			if err != nil {
				t.Fatal(err)
			}

			if int(a.TotalParams) != m.WeightBytes() {
				t.Fatalf("analytic weight bytes %d != lowered model %d", a.TotalParams, m.WeightBytes())
			}
			if a.TotalOps() != m.TotalOps() {
				t.Fatalf("analytic ops %d != lowered model %d", a.TotalOps(), m.TotalOps())
			}

			weightBytes := float64(m.WeightBytes())
			arenaBytes := float64(plan.ArenaBytes)
			ops := float64(m.TotalOps())
			exact := core.Constraints{MaxWeightBytes: weightBytes, MaxArenaBytes: arenaBytes, MaxOps: ops}
			if v := exact.CheckBytes(weightBytes, arenaBytes, ops); len(v) != 0 {
				t.Fatalf("budgets equal to usage must pass, got %v", v)
			}
			tight := core.Constraints{MaxWeightBytes: weightBytes - 1, MaxArenaBytes: arenaBytes - 1, MaxOps: ops - 1}
			if v := tight.CheckBytes(weightBytes, arenaBytes, ops); len(v) != 3 {
				t.Fatalf("budgets below usage must report 3 violations, got %v", v)
			}

			hasAdd := false
			for _, op := range m.Ops {
				if op.Kind == graph.OpAdd {
					hasAdd = true
					break
				}
			}
			if !hasAdd {
				// Aligned analytic peak: what the DNAS working-memory proxy
				// bounds, after the planner's per-buffer alignment.
				peak := 0
				for _, l := range a.Layers {
					if ws := alignUp(int(l.InBytes())) + alignUp(int(l.OutBytes())); ws > peak {
						peak = ws
					}
				}
				if plan.ArenaBytes > peak {
					t.Fatalf("chain model: planned arena %d exceeds analytic peak working set %d", plan.ArenaBytes, peak)
				}
			}
		})
	}
}
