package tflm

import (
	"fmt"

	"micronets/internal/graph"
	"micronets/internal/kernels"
)

// Prepared is everything interpreter construction derives from the model
// alone: validation, the memory plan, and the engine's prepared kernel
// state (packed weight panels, folded biases, depthwise prefix sums).
// It is immutable after Prepare returns and safe to share across any
// number of interpreters — a serving pool builds one Prepared per model
// version and stamps out per-replica interpreters from it, so N replicas
// pay for the packed weights once instead of N times. This is the
// TinyEngine-style prepare/execute split: model-derived state is
// read-only and shared, per-invocation state (the arena, scratch) stays
// private to each replica.
type Prepared struct {
	model  *graph.Model
	engine kernels.Engine
	plan   *Plan
	prep   *kernels.PreparedModel
}

// Prepare validates, plans, and prepares a model for the default engine.
func Prepare(m *graph.Model) (*Prepared, error) {
	return PrepareWithEngine(m, kernels.Default)
}

// PrepareWithEngine is Prepare with an explicit kernel engine. It fails —
// like TFLM's AllocateTensors — if the model contains unsupported ops.
func PrepareWithEngine(m *graph.Model, eng kernels.Engine) (*Prepared, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for i, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			return nil, fmt.Errorf("tflm: model %s: op %d (%s %q): operator not supported by the runtime", m.Name, i, op.Kind, op.Name)
		}
	}
	for _, t := range m.Tensors {
		// 4-bit activations pack two per byte in the memory plan (that is
		// the point of the §5.1.3 emulation — smaller arenas), but the
		// host kernels execute one int8 element per byte, so such models
		// are planner/latency artifacts, not executable here. Refuse
		// cleanly rather than slicing past the packed arena.
		if t.Bits == 4 {
			return nil, fmt.Errorf("tflm: model %s: 4-bit activations are a memory/latency emulation; the host runtime executes int8 only", m.Name)
		}
	}
	plan, err := PlanMemory(m)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, err
	}
	return &Prepared{model: m, engine: eng, plan: plan, prep: kernels.PrepareModel(m)}, nil
}

// Model returns the model this state was prepared for.
func (p *Prepared) Model() *graph.Model { return p.model }

// Engine returns the kernel engine interpreters from this Prepared use.
func (p *Prepared) Engine() kernels.Engine { return p.engine }

// Plan returns the shared memory plan.
func (p *Prepared) Plan() *Plan { return p.plan }

// WeightBytes is the RAM footprint of the shared prepared kernel state
// (packed panels, folded biases, prefix sums, multipliers). Paid once per
// model version regardless of pool size; the repository adds it to
// planned RAM exactly once.
func (p *Prepared) WeightBytes() int { return p.prep.Bytes() }

// NewInterpreter builds one replica over the shared prepared state: a
// private arena plus per-op executors bound once against it. arenaLimit
// (bytes) bounds the activation arena; pass 0 for unlimited.
func (p *Prepared) NewInterpreter(arenaLimit int) (*Interpreter, error) {
	m := p.model
	if arenaLimit > 0 && p.plan.ArenaBytes > arenaLimit {
		return nil, fmt.Errorf("tflm: model %s needs %d arena bytes, limit %d",
			m.Name, p.plan.ArenaBytes, arenaLimit)
	}
	// Engines that use no scratch (Reference) get a bare activation
	// arena; Gemm-family interpreters carry the planner-accounted im2col
	// tail.
	scratchBytes := alignUp(p.engine.ScratchBytes(m))
	ip := &Interpreter{
		prep:   p,
		model:  m,
		plan:   p.plan,
		engine: p.engine,
		arena:  make([]int8, p.plan.ArenaBytes+scratchBytes),
		bufs:   make([][]int8, len(m.Tensors)),
		steps:  make([]func(), len(m.Ops)),
	}
	for _, a := range p.plan.Allocations {
		t := m.Tensors[a.TensorID]
		ip.bufs[a.TensorID] = ip.arena[a.Offset : a.Offset+t.Elems()]
	}
	ip.scratch = kernels.NewScratch(m, ip.arena[p.plan.ArenaBytes:])
	for i, op := range m.Ops {
		step, err := kernels.BindOp(p.engine, m, op, p.prep.Ctx(i), ip.bufs, ip.scratch)
		if err != nil {
			return nil, fmt.Errorf("tflm: model %s: op %d (%s %q): %w", m.Name, i, op.Kind, op.Name, err)
		}
		ip.steps[i] = step
	}
	return ip, nil
}
