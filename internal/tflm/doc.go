// Package tflm implements the reproduction's inference runtime — the
// stand-in for TensorFlow Lite for Microcontrollers. Like TFLM it is an
// interpreter over a serialized graph: tensors live in a single SRAM arena
// laid out by a greedy offset planner, weights and the graph stay in flash,
// and a per-op "persistent buffer" region holds requantization parameters
// and kernel structs (Figure 2 of the paper).
package tflm
