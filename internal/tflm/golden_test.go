package tflm

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tensor"
	"micronets/internal/zoo"
)

// The golden end-to-end regression: fixed-seed zoo specs are lowered,
// planned and invoked on a fixed input, and the quantized output logits
// are compared byte-for-byte against checked-in vectors. Any kernel,
// planner or lowering refactor that changes numerics — even by one
// rounding — fails here and must consciously regenerate the goldens:
//
//	go test ./internal/tflm -run TestGoldenLogits -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_logits.json from the current implementation")

const goldenPath = "testdata/golden_logits.json"

// goldenModels picks specs covering every op the runtime implements:
// conv/dwconv chains (KWS), IBN expand/dw/project with residual adds
// (MBNETV2), pure dense stacks (FC-AE), and the AD geometry.
var goldenModels = []string{
	"MicroNet-KWS-S",
	"DSCNN-S",
	"MBNETV2-S",
	"MicroNet-AD-S",
	"FC-AE(Baseline)",
}

const goldenWeightSeed = 42

// goldenEntry is one model's pinned behaviour: the planner's arena size
// and the exact output bytes from both engines (they must agree, so one
// vector serves for both).
type goldenEntry struct {
	WeightSeed int    `json:"weight_seed"`
	InputSeed  int    `json:"input_seed"`
	ArenaBytes int    `json:"arena_bytes"`
	Logits     []int8 `json:"logits"`
}

// goldenInput synthesizes the fixed input: deterministic uniform floats
// in [-1, 1) shaped to the model input.
func goldenInput(m *graph.Model, seed int64) *tensor.Tensor {
	in := m.Tensors[m.Input]
	x := tensor.New(in.H, in.W, in.C)
	rng := rand.New(rand.NewSource(seed))
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return x
}

// runGolden lowers, plans and invokes one zoo model on an engine,
// returning the raw quantized output and the planned arena size.
func runGolden(t *testing.T, name string, eng kernels.Engine) ([]int8, int) {
	t.Helper()
	e, err := zoo.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(goldenWeightSeed)), graph.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreterWithEngine(m, 0, eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.SetInputFloat(goldenInput(m, goldenWeightSeed+1)); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	out := append([]int8(nil), ip.Output()...)
	return out, ip.Plan().ArenaBytes
}

func TestGoldenLogits(t *testing.T) {
	if *updateGolden {
		golden := map[string]goldenEntry{}
		for _, name := range goldenModels {
			logits, arena := runGolden(t, name, kernels.Gemm)
			golden[name] = goldenEntry{
				WeightSeed: goldenWeightSeed, InputSeed: goldenWeightSeed + 1,
				ArenaBytes: arena, Logits: logits,
			}
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d models", goldenPath, len(golden))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden vectors (run with -update-golden to create): %v", err)
	}
	var golden map[string]goldenEntry
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, name := range goldenModels {
		name := name
		t.Run(name, func(t *testing.T) {
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden entry for %s (regenerate with -update-golden)", name)
			}
			for _, eng := range []kernels.Engine{kernels.Gemm, kernels.Reference} {
				logits, arena := runGolden(t, name, eng)
				if arena != want.ArenaBytes {
					t.Errorf("%s: arena %d bytes, golden %d — the planner changed its layout",
						eng.Name(), arena, want.ArenaBytes)
				}
				if len(logits) != len(want.Logits) {
					t.Fatalf("%s: %d output bytes, golden %d", eng.Name(), len(logits), len(want.Logits))
				}
				for i := range logits {
					if logits[i] != want.Logits[i] {
						t.Fatalf("%s: logits[%d] = %d, golden %d — numerics changed; if intentional, regenerate with -update-golden",
							eng.Name(), i, logits[i], want.Logits[i])
					}
				}
			}
		})
	}
}
