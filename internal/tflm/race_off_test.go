//go:build !race

package tflm

// raceEnabled reports whether the race detector is active; allocation
// tests skip under it (instrumentation skews the counters).
const raceEnabled = false
