package tflm

import (
	"math/rand"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/tensor"
)

func TestOpTimerSeesEveryOp(t *testing.T) {
	m := lowered(t, 11)
	ip, err := NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if err := ip.SetInputFloat(tensor.Randn(rng, 1, 49, 10, 1)); err != nil {
		t.Fatal(err)
	}
	var seen []int
	ip.SetOpTimer(func(index int, kind graph.OpKind, name string, ns int64) {
		if kind != m.Ops[index].Kind || name != m.Ops[index].Name {
			t.Errorf("hook op %d reported %s %q, model has %s %q", index, kind, name, m.Ops[index].Kind, m.Ops[index].Name)
		}
		if ns < 0 {
			t.Errorf("op %d negative duration %d", index, ns)
		}
		seen = append(seen, index)
	})
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(m.Ops) {
		t.Fatalf("hook saw %d ops, model has %d", len(seen), len(m.Ops))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("ops out of order: position %d saw index %d", i, idx)
		}
	}
	// Removing the hook restores the untimed path.
	ip.SetOpTimer(nil)
	seen = seen[:0]
	if err := ip.SetInputFloat(tensor.Randn(rng, 1, 49, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Fatalf("hook fired %d times after removal", len(seen))
	}
}

func TestProfileInvoke(t *testing.T) {
	m := lowered(t, 13)
	ip, err := NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	if err := ip.SetInputFloat(tensor.Randn(rng, 1, 49, 10, 1)); err != nil {
		t.Fatal(err)
	}
	var external int
	ip.SetOpTimer(func(int, graph.OpKind, string, int64) { external++ })
	timings, err := ip.ProfileInvoke()
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != len(m.Ops) {
		t.Fatalf("profile returned %d rows, model has %d ops", len(timings), len(m.Ops))
	}
	for i, tm := range timings {
		if tm.Index != i || tm.Kind != m.Ops[i].Kind || tm.Name != m.Ops[i].Name {
			t.Fatalf("row %d = %+v, want op %d (%s %q)", i, tm, i, m.Ops[i].Kind, m.Ops[i].Name)
		}
	}
	if external != 0 {
		t.Fatalf("ProfileInvoke leaked %d calls into the previous hook", external)
	}
	// The previous hook must be restored after profiling.
	if err := ip.SetInputFloat(tensor.Randn(rng, 1, 49, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	if external != len(m.Ops) {
		t.Fatalf("restored hook saw %d ops, want %d", external, len(m.Ops))
	}
}
