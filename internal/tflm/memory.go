package tflm

import (
	"fmt"
	"strings"

	"micronets/internal/graph"
)

// Runtime overheads measured in the paper (Figure 2 and §3.1): "the runtime
// overhead for the TFLM interpreter is fairly minimal, requiring just 4KB
// of SRAM and 37 KB of eFlash". "Other" captures application scaffolding.
const (
	InterpreterSRAMBytes  = 4 * 1024
	RuntimeCodeFlashBytes = 37 * 1024
	OtherSRAMBytes        = 4 * 1024
	OtherFlashBytes       = 38 * 1024
)

// MemoryReport is the full memory map of a deployed model — the data behind
// Figure 2 and the SRAM/Flash columns of Table 4.
type MemoryReport struct {
	ModelName string

	// SRAM side.
	ArenaBytes      int // intermediate activation tensors (planned arena)
	PersistentBytes int // buffered quant params + op/tensor structs
	InterpreterSRAM int
	OtherSRAM       int

	// Flash side.
	WeightsFlash    int // weights + biases
	QuantGraphFlash int // quantization params + graph definition
	RuntimeFlash    int
	OtherFlash      int
}

// PersistentBufferBytes models TFLM's per-model persistent allocations:
// buffered per-channel requantization parameters (8 bytes per output
// channel: int32 multiplier + int32 shift), plus per-op kernel structs and
// per-tensor TfLiteEvalTensor records.
func PersistentBufferBytes(m *graph.Model) int {
	bytes := 0
	for _, op := range m.Ops {
		bytes += 8 * len(op.WeightScales) // requant multiplier+shift
		bytes += 160                      // kernel params struct + node record
	}
	bytes += 64 * len(m.Tensors)
	return bytes
}

// Report computes the memory map for a model. The plan is computed if nil.
func Report(m *graph.Model, plan *Plan) (*MemoryReport, error) {
	if plan == nil {
		var err error
		plan, err = PlanMemory(m)
		if err != nil {
			return nil, err
		}
	}
	return &MemoryReport{
		ModelName:       m.Name,
		ArenaBytes:      plan.ArenaBytes,
		PersistentBytes: PersistentBufferBytes(m),
		InterpreterSRAM: InterpreterSRAMBytes,
		OtherSRAM:       OtherSRAMBytes,
		WeightsFlash:    m.WeightBytes() + m.BiasBytes(),
		QuantGraphFlash: m.QuantParamBytes() + m.GraphDefBytes(),
		RuntimeFlash:    RuntimeCodeFlashBytes,
		OtherFlash:      OtherFlashBytes,
	}, nil
}

// ModelSRAM returns the model's own SRAM use (arena + persistent buffers) —
// the "SRAM" column of Table 4, which excludes interpreter overheads.
func (r *MemoryReport) ModelSRAM() int { return r.ArenaBytes + r.PersistentBytes }

// ModelFlash returns the model's own flash use (the .tflite-file analogue)
// — the "Flash" column of Table 4.
func (r *MemoryReport) ModelFlash() int { return r.WeightsFlash + r.QuantGraphFlash }

// TotalSRAM returns everything the application needs in SRAM.
func (r *MemoryReport) TotalSRAM() int {
	return r.ModelSRAM() + r.InterpreterSRAM + r.OtherSRAM
}

// TotalFlash returns everything the application needs in flash (the
// "Binary" column analogue adds the runtime and app code).
func (r *MemoryReport) TotalFlash() int {
	return r.ModelFlash() + r.RuntimeFlash + r.OtherFlash
}

// FitsDevice checks deployability against SRAM/flash budgets in bytes.
func (r *MemoryReport) FitsDevice(sramBytes, flashBytes int) error {
	var problems []string
	if r.TotalSRAM() > sramBytes {
		problems = append(problems, fmt.Sprintf("SRAM %d > %d", r.TotalSRAM(), sramBytes))
	}
	if r.TotalFlash() > flashBytes {
		problems = append(problems, fmt.Sprintf("flash %d > %d", r.TotalFlash(), flashBytes))
	}
	if len(problems) > 0 {
		return fmt.Errorf("tflm: %s does not fit: %s", r.ModelName, strings.Join(problems, "; "))
	}
	return nil
}

// String renders the Figure 2-style breakdown.
func (r *MemoryReport) String() string {
	var b strings.Builder
	kb := func(n int) string { return fmt.Sprintf("%.1f KB", float64(n)/1024) }
	fmt.Fprintf(&b, "Memory map for %s\n", r.ModelName)
	fmt.Fprintf(&b, "  SRAM:\n")
	fmt.Fprintf(&b, "    TF Micro interpreter : %s\n", kb(r.InterpreterSRAM))
	fmt.Fprintf(&b, "    Intermediate tensors : %s\n", kb(r.ArenaBytes))
	fmt.Fprintf(&b, "    Persistent buffers   : %s\n", kb(r.PersistentBytes))
	fmt.Fprintf(&b, "    Other                : %s\n", kb(r.OtherSRAM))
	fmt.Fprintf(&b, "    Total                : %s\n", kb(r.TotalSRAM()))
	fmt.Fprintf(&b, "  eFlash:\n")
	fmt.Fprintf(&b, "    TF Micro code        : %s\n", kb(r.RuntimeFlash))
	fmt.Fprintf(&b, "    Weights + biases     : %s\n", kb(r.WeightsFlash))
	fmt.Fprintf(&b, "    Quant params + graph : %s\n", kb(r.QuantGraphFlash))
	fmt.Fprintf(&b, "    Other                : %s\n", kb(r.OtherFlash))
	fmt.Fprintf(&b, "    Total                : %s\n", kb(r.TotalFlash()))
	return b.String()
}
