package tflm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"micronets/internal/graph"
	"micronets/internal/zoo"
)

// The tentpole invariants of the prepare/execute split, measured rather
// than asserted by review: a warm Invoke allocates nothing (all dispatch
// and scratch were bound at construction), and the shared PreparedModel
// is never written while replicas invoke concurrently (the -race build
// of TestSharedPreparedConcurrentInvoke proves it mechanically).

// servableZooModels lowers every servable catalogue entry once.
func servableZooModels(t testing.TB) map[string]*graph.Model {
	t.Helper()
	out := make(map[string]*graph.Model)
	for _, name := range zoo.ServableNames() {
		e, err := zoo.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{AppendSoftmax: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = m
	}
	return out
}

// TestInvokeZeroAllocs pins the allocation-free steady state on every
// servable zoo model: after the first (warming) invoke, Invoke must not
// touch the heap at all. Any regression — a closure escaping in a
// kernel, a forgotten make in an op path — fails this exactly.
func TestInvokeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	for name, m := range servableZooModels(t) {
		t.Run(name, func(t *testing.T) {
			ip, err := NewInterpreter(m, 0)
			if err != nil {
				t.Fatal(err)
			}
			in := ip.Input()
			for i := range in {
				in[i] = int8(i*31 + 7)
			}
			if err := ip.Invoke(); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if err := ip.Invoke(); err != nil {
					t.Error(err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state Invoke allocates %.1f objects/op, want 0", avg)
			}
		})
	}
}

// TestSharedPreparedConcurrentInvoke runs several replicas of one
// Prepared concurrently under load and then cross-checks their outputs.
// Under -race (CI's test job) this proves the shared packed weights are
// never written post-build; in any mode it proves replicas sharing one
// weight copy stay bit-identical.
func TestSharedPreparedConcurrentInvoke(t *testing.T) {
	e, err := zoo.Get("MicroNet-KWS-S")
	if err != nil {
		t.Fatal(err)
	}
	m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 4
	ips := make([]*Interpreter, replicas)
	for r := range ips {
		if ips[r], err = prep.NewInterpreter(0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for r, ip := range ips {
		wg.Add(1)
		go func(r int, ip *Interpreter) {
			defer wg.Done()
			in := ip.Input()
			for iter := 0; iter < 5; iter++ {
				for i := range in {
					in[i] = int8(i*13 + iter) // same stream in every replica
				}
				if err := ip.Invoke(); err != nil {
					t.Errorf("replica %d: %v", r, err)
					return
				}
			}
		}(r, ip)
	}
	wg.Wait()
	want := make([]int8, len(ips[0].Output()))
	copy(want, ips[0].Output())
	for r := 1; r < replicas; r++ {
		got := make([]int8, len(ips[r].Output()))
		copy(got, ips[r].Output())
		if !bytes.Equal(int8ToBytes(got), int8ToBytes(want)) {
			t.Fatalf("replica %d output diverged from replica 0", r)
		}
	}
}

func int8ToBytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}
