package tflm

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"micronets/internal/arch"
	ag "micronets/internal/autograd"
	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tensor"
	"micronets/internal/zoo"
)

func testSpec() *arch.Spec {
	return &arch.Spec{
		Name: "planner-test", Task: "kws",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 16, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 20, Stride: 1},
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
}

func lowered(t *testing.T, seed int64) *graph.Model {
	t.Helper()
	m, err := graph.FromSpec(testSpec(), rand.New(rand.NewSource(seed)), graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlanNonOverlapInvariant(t *testing.T) {
	m := lowered(t, 1)
	plan, err := PlanMemory(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSavesVsNaive(t *testing.T) {
	m := lowered(t, 2)
	plan, err := PlanMemory(m)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes >= NaiveArenaBytes(m) {
		t.Fatalf("planner (%d) must beat naive sum (%d)", plan.ArenaBytes, NaiveArenaBytes(m))
	}
	// And can never beat the tightest single producer-consumer pair.
	biggest := 0
	for _, op := range m.Ops {
		in := m.Tensors[op.Inputs[0]].Bytes()
		out := m.Tensors[op.Output].Bytes()
		if in+out > biggest {
			biggest = in + out
		}
	}
	if plan.ArenaBytes < biggest {
		t.Fatalf("arena %d below working-set lower bound %d", plan.ArenaBytes, biggest)
	}
}

func TestQuickPlannerInvariantAcrossZoo(t *testing.T) {
	names := []string{"MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-AD-S", "MicroNet-VWW-2", "DSCNN-S", "FC-AE(Baseline)"}
	f := func(seedRaw int64, pick uint8) bool {
		e, err := zoo.Get(names[int(pick)%len(names)])
		if err != nil || e.Spec == nil {
			return true
		}
		m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(seedRaw)), graph.LowerOptions{})
		if err != nil {
			return false
		}
		plan, err := PlanMemory(m)
		if err != nil {
			return false
		}
		return plan.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpreterRunsAndIsDeterministic(t *testing.T) {
	m := lowered(t, 3)
	ip, err := NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(rng, 1, 49, 10, 1)
	// The arena reuses the input region for later tensors (as TFLM does),
	// so the input must be set before every Invoke.
	if err := ip.SetInputFloat(x); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	first := append([]float32(nil), ip.OutputFloat()...)
	if err := ip.SetInputFloat(x); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	second := ip.OutputFloat()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("interpreter must be deterministic")
		}
	}
	// Softmax output sums to ~1.
	var sum float64
	for _, v := range second {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestInterpreterArenaLimit(t *testing.T) {
	m := lowered(t, 5)
	if _, err := NewInterpreter(m, 16); err == nil {
		t.Fatal("tiny arena limit must fail allocation")
	}
}

func TestInterpreterRejectsTransposedConv(t *testing.T) {
	spec := zoo.ConvAutoencoder()
	m, err := graph.FromSpec(spec, rand.New(rand.NewSource(6)), graph.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterpreter(m, 0); err == nil {
		t.Fatal("Conv-AE must be rejected (TFLM lacks transposed conv, §6.4)")
	}
}

// TestInterpreterRejectsFourBitActivations: 4-bit activations pack two
// per byte in the arena plan but the kernels execute one element per
// byte, so construction must fail cleanly (it used to panic slicing past
// the packed arena). 4-bit weights only are still executable.
func TestInterpreterRejectsFourBitActivations(t *testing.T) {
	e, err := zoo.Get("DSCNN-S")
	if err != nil {
		t.Fatal(err)
	}
	m4, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(6)), graph.LowerOptions{ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterpreter(m4, 0); err == nil {
		t.Fatal("4-bit-activation model must be rejected, not panic")
	}
	w4, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(6)), graph.LowerOptions{WeightBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(w4, 0)
	if err != nil {
		t.Fatalf("4-bit weights with 8-bit activations must stay executable: %v", err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
}

// TestExportedModelMatchesFloat is the end-to-end int8 correctness test:
// train a tiny model (a few steps so weights are non-trivial), export it
// through BN folding + per-channel quantization, and verify the int8
// interpreter agrees with the float model on classification decisions.
func TestExportedModelMatchesFloat(t *testing.T) {
	spec := &arch.Spec{
		Name: "export-test", Task: "kws",
		InputH: 12, InputW: 8, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 12, Stride: 2},
			{Kind: arch.IBN, KH: 3, KW: 3, Expand: 16, OutC: 12, Stride: 1},
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 4},
		},
	}
	rng := rand.New(rand.NewSource(7))
	model, err := arch.Build(rng, spec, arch.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Push a couple of batches through in training mode so BatchNorm
	// running statistics move away from their init.
	for i := 0; i < 5; i++ {
		x := tensor.Randn(rng, 1, 8, 12, 8, 1)
		model.Forward(ag.Constant(x), true)
	}
	calib := tensor.Randn(rng, 1, 16, 12, 8, 1)
	gm, err := graph.Export(spec, model, calib, graph.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gm.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(gm, 0)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const trials = 24
	var worst float64
	for i := 0; i < trials; i++ {
		x := tensor.Randn(rng, 1, 1, 12, 8, 1)
		floatLogits := model.Forward(ag.Constant(x), false)
		pred, _, err := ip.Classify(x.Reshape(12, 8, 1))
		if err != nil {
			t.Fatal(err)
		}
		fBest := 0
		row := floatLogits.Value.Data
		for j, v := range row {
			if v > row[fBest] {
				fBest = j
			}
		}
		if pred == fBest {
			agree++
		}
		// Also check logit-level agreement.
		q := ip.OutputFloat()
		for j := range q {
			d := math.Abs(float64(q[j] - row[j]))
			if d > worst {
				worst = d
			}
		}
	}
	if agree < trials*3/4 {
		t.Fatalf("int8 interpreter agrees with float on %d/%d decisions", agree, trials)
	}
	if worst > 1.0 {
		t.Fatalf("worst logit deviation %v too large", worst)
	}
}

func TestMemoryReportShapes(t *testing.T) {
	m := lowered(t, 8)
	rep, err := Report(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelSRAM() != rep.ArenaBytes+rep.PersistentBytes {
		t.Fatal("ModelSRAM composition wrong")
	}
	if rep.TotalSRAM() <= rep.ModelSRAM() {
		t.Fatal("total SRAM must add interpreter overheads")
	}
	if rep.ModelFlash() != rep.WeightsFlash+rep.QuantGraphFlash {
		t.Fatal("ModelFlash composition wrong")
	}
	if rep.RuntimeFlash != 37*1024 || rep.InterpreterSRAM != 4*1024 {
		t.Fatal("TFLM overheads must match the paper's Figure 2 values")
	}
}

func TestFitsDevice(t *testing.T) {
	m := lowered(t, 9)
	rep, err := Report(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FitsDevice(1<<30, 1<<30); err != nil {
		t.Fatalf("must fit a huge device: %v", err)
	}
	if err := rep.FitsDevice(1024, 1<<30); err == nil {
		t.Fatal("must not fit 1KB SRAM")
	}
	if err := rep.FitsDevice(1<<30, 1024); err == nil {
		t.Fatal("must not fit 1KB flash")
	}
}

// TestPaperMemoryCalibration pins the reproduction to the paper's Table 4
// memory columns for the KWS MicroNets (within 15%).
func TestPaperMemoryCalibration(t *testing.T) {
	cases := []struct {
		name            string
		sramKB, flashKB float64
	}{
		{"MicroNet-KWS-M", 103.3, 163},
		{"MicroNet-KWS-S", 53.2, 102},
		{"MicroNet-AD-M", 274.5, 464},
	}
	for _, c := range cases {
		e, err := zoo.Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(1)), graph.LowerOptions{AppendSoftmax: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Report(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		sram := float64(rep.ModelSRAM()) / 1024
		flash := float64(rep.ModelFlash()) / 1024
		if math.Abs(sram-c.sramKB)/c.sramKB > 0.20 {
			t.Errorf("%s SRAM %.1f KB vs paper %.1f KB (>20%%)", c.name, sram, c.sramKB)
		}
		if math.Abs(flash-c.flashKB)/c.flashKB > 0.25 {
			t.Errorf("%s flash %.1f KB vs paper %.1f KB (>25%%)", c.name, flash, c.flashKB)
		}
	}
}

// TestEngineParityEndToEnd runs real zoo models through both kernel
// engines and demands byte-identical outputs: the parallel GEMM path must
// be a pure performance change.
func TestEngineParityEndToEnd(t *testing.T) {
	for _, name := range []string{"MicroNet-KWS-S", "MicroNet-VWW-2"} {
		t.Run(name, func(t *testing.T) {
			e, err := zoo.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := graph.FromSpec(e.Spec, rand.New(rand.NewSource(3)), graph.LowerOptions{AppendSoftmax: true})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewInterpreterWithEngine(m, 0, kernels.Reference)
			if err != nil {
				t.Fatal(err)
			}
			gemm, err := NewInterpreterWithEngine(m, 0, kernels.Gemm)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			for trial := 0; trial < 3; trial++ {
				in := make([]int8, len(ref.Input()))
				for i := range in {
					in[i] = int8(rng.Intn(256) - 128)
				}
				copy(ref.Input(), in)
				copy(gemm.Input(), in)
				if err := ref.Invoke(); err != nil {
					t.Fatal(err)
				}
				if err := gemm.Invoke(); err != nil {
					t.Fatal(err)
				}
				for i := range ref.Output() {
					if ref.Output()[i] != gemm.Output()[i] {
						t.Fatalf("trial %d: out[%d] reference=%d gemm=%d",
							trial, i, ref.Output()[i], gemm.Output()[i])
					}
				}
			}
		})
	}
}

// TestInvokeBatch checks the batched API agrees with one-at-a-time
// invocation and validates input lengths.
func TestInvokeBatch(t *testing.T) {
	m := lowered(t, 5)
	ip, err := NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	batch := make([][]int8, 4)
	for b := range batch {
		batch[b] = make([]int8, len(ip.Input()))
		for i := range batch[b] {
			batch[b][i] = int8(rng.Intn(256) - 128)
		}
	}
	outs, err := ip.InvokeBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(batch) {
		t.Fatalf("got %d outputs for %d inputs", len(outs), len(batch))
	}
	for b := range batch {
		copy(ip.Input(), batch[b])
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
		for i := range outs[b] {
			if outs[b][i] != ip.Output()[i] {
				t.Fatalf("batch %d out[%d] = %d, single-invoke %d", b, i, outs[b][i], ip.Output()[i])
			}
		}
	}
	if _, err := ip.InvokeBatch([][]int8{make([]int8, 3)}); err == nil {
		t.Fatal("InvokeBatch must reject wrong-sized inputs")
	}
}

// TestScratchPlanned checks the im2col scratch is planner-accounted and
// sized for the worst conv in the model.
func TestScratchPlanned(t *testing.T) {
	m := lowered(t, 6)
	plan, err := PlanMemory(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := kernels.ScratchBytes(m); plan.ScratchBytes < want {
		t.Fatalf("plan scratch %d below engine requirement %d", plan.ScratchBytes, want)
	}
	if plan.TotalBytes() != plan.ArenaBytes+plan.ScratchBytes {
		t.Fatal("TotalBytes must be arena + scratch")
	}
}

// TestInvokeErrorNamesOp checks the diagnosable-error satellite: an
// unsupported op must surface its index, kind and name. Since dispatch
// moved to bind time, the error now arrives at construction — before any
// request can hit it — rather than on the first Invoke.
func TestInvokeErrorNamesOp(t *testing.T) {
	m := lowered(t, 8)
	saved := m.Ops[1].Kind
	m.Ops[1].Kind = graph.OpTransposedConv
	defer func() { m.Ops[1].Kind = saved }()
	_, err := NewInterpreter(m, 0)
	if err == nil {
		t.Fatal("expected error for unsupported op")
	}
	for _, frag := range []string{"op 1", "TRANSPOSE_CONV", m.Ops[1].Name} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not name %q", err, frag)
		}
	}
}

// TestInvokeBatchEmpty: an empty batch is a no-op, not an error.
func TestInvokeBatchEmpty(t *testing.T) {
	ip, err := NewInterpreter(lowered(t, 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ip.InvokeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("empty batch produced %d outputs", len(outs))
	}
}

// TestInvokeBatchErrorNamesIndex: a wrong-length input deep in the batch
// is rejected naming its position, and after Reset the same interpreter
// serves a clean batch — the pooled-reuse contract of the serving layer.
func TestInvokeBatchErrorNamesIndex(t *testing.T) {
	ip, err := NewInterpreter(lowered(t, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]int8, len(ip.Input()))
	for i := range good {
		good[i] = int8(i % 100)
	}
	_, err = ip.InvokeBatch([][]int8{good, make([]int8, 3)})
	if err == nil {
		t.Fatal("wrong-length input must error")
	}
	if !strings.Contains(err.Error(), "input 1") {
		t.Fatalf("error %q does not name the failing batch index", err)
	}

	// Post-error reuse: reset, then the interpreter must produce the same
	// output as a freshly constructed one.
	ip.Reset()
	outs, err := ip.InvokeBatch([][]int8{good})
	if err != nil {
		t.Fatalf("reused interpreter after error: %v", err)
	}
	fresh, err := NewInterpreter(ip.Model(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.InvokeBatch([][]int8{good})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0] {
		if outs[0][i] != want[0][i] {
			t.Fatalf("post-error reuse diverged at out[%d]: %d vs %d", i, outs[0][i], want[0][i])
		}
	}
}

// TestResetZeroesArena: Reset must return the arena to its freshly
// allocated state.
func TestResetZeroesArena(t *testing.T) {
	ip, err := NewInterpreter(lowered(t, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ip.Input() {
		ip.Input()[i] = 77
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	ip.Reset()
	for i, v := range ip.arena {
		if v != 0 {
			t.Fatalf("arena[%d] = %d after Reset", i, v)
		}
	}
	if ip.ArenaBytes() != len(ip.arena) {
		t.Fatal("ArenaBytes must report the full arena")
	}
}

// TestPooledInterpretersConcurrentNoAliasing is the -race satellite: two
// interpreters over the same model serve interleaved concurrent batches
// and must match the serial baseline bit-for-bit — proving pooled
// replicas share no arena state.
func TestPooledInterpretersConcurrentNoAliasing(t *testing.T) {
	m := lowered(t, 12)
	serial, err := NewInterpreter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	const perWorker = 6
	rng := rand.New(rand.NewSource(33))
	inputs := make([][][]int8, workers)
	want := make([][][]int8, workers)
	for w := 0; w < workers; w++ {
		inputs[w] = make([][]int8, perWorker)
		for r := range inputs[w] {
			in := make([]int8, len(serial.Input()))
			for i := range in {
				in[i] = int8(rng.Intn(256) - 128)
			}
			inputs[w][r] = in
		}
		want[w], err = serial.InvokeBatch(inputs[w])
		if err != nil {
			t.Fatal(err)
		}
	}

	ips := make([]*Interpreter, workers)
	for w := range ips {
		if ips[w], err = NewInterpreter(m, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	got := make([][][]int8, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One row at a time to maximize interleaving between workers.
			for _, in := range inputs[w] {
				outs, err := ips[w].InvokeBatch([][]int8{in})
				if err != nil {
					errs[w] = err
					return
				}
				got[w] = append(got[w], outs[0])
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for r := range want[w] {
			for i := range want[w][r] {
				if got[w][r][i] != want[w][r][i] {
					t.Fatalf("worker %d row %d out[%d]: concurrent %d != serial %d (arena aliasing?)",
						w, r, i, got[w][r][i], want[w][r][i])
				}
			}
		}
	}
}
