package tflm

import (
	"fmt"
	"math"

	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tensor"
)

// Interpreter executes a graph.Model, mirroring TFLM's MicroInterpreter:
// construct, AllocateTensors (memory planning + op preparation), set the
// input, Invoke, read the output.
type Interpreter struct {
	model *graph.Model
	plan  *Plan
	arena []int8
	// bufs[i] is tensor i's slice into the arena.
	bufs [][]int8
	ctxs []*kernels.Ctx
}

// NewInterpreter plans memory and prepares kernels. arenaLimit (bytes)
// bounds the activation arena; pass 0 for unlimited (host-side use).
// It fails — like TFLM — if the model contains unsupported ops or the
// arena does not fit.
func NewInterpreter(m *graph.Model, arenaLimit int) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for _, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			return nil, fmt.Errorf("tflm: model %s: operator %s not supported by the runtime", m.Name, op.Kind)
		}
	}
	plan, err := PlanMemory(m)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, err
	}
	if arenaLimit > 0 && plan.ArenaBytes > arenaLimit {
		return nil, fmt.Errorf("tflm: model %s needs %d arena bytes, limit %d",
			m.Name, plan.ArenaBytes, arenaLimit)
	}
	ip := &Interpreter{
		model: m,
		plan:  plan,
		arena: make([]int8, plan.ArenaBytes),
		bufs:  make([][]int8, len(m.Tensors)),
		ctxs:  make([]*kernels.Ctx, len(m.Ops)),
	}
	for _, a := range plan.Allocations {
		t := m.Tensors[a.TensorID]
		ip.bufs[a.TensorID] = ip.arena[a.Offset : a.Offset+t.Elems()]
	}
	for i, op := range m.Ops {
		switch op.Kind {
		case graph.OpConv2D, graph.OpDWConv2D, graph.OpDense:
			ip.ctxs[i] = kernels.PrepareConv(m, op)
		}
	}
	return ip, nil
}

// Model returns the underlying model.
func (ip *Interpreter) Model() *graph.Model { return ip.model }

// Plan returns the memory plan.
func (ip *Interpreter) Plan() *Plan { return ip.plan }

// Input returns the raw quantized input buffer.
func (ip *Interpreter) Input() []int8 { return ip.bufs[ip.model.Input] }

// Output returns the raw quantized output buffer.
func (ip *Interpreter) Output() []int8 { return ip.bufs[ip.model.Output] }

// SetInputFloat quantizes a float tensor (shape [h,w,c] or flat of the
// right size) into the input buffer.
func (ip *Interpreter) SetInputFloat(x *tensor.Tensor) error {
	in := ip.model.Tensors[ip.model.Input]
	if x.Len() != in.Elems() {
		return fmt.Errorf("tflm: input has %d elements, model wants %d", x.Len(), in.Elems())
	}
	lo, hi := int32(-128), int32(127)
	if in.Bits == 4 {
		lo, hi = -8, 7
	}
	buf := ip.Input()
	for i, v := range x.Data {
		q := int32(math.Round(float64(v)/float64(in.Scale))) + in.ZeroPoint
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		buf[i] = int8(q)
	}
	return nil
}

// OutputFloat dequantizes the output buffer.
func (ip *Interpreter) OutputFloat() []float32 {
	out := ip.model.Tensors[ip.model.Output]
	buf := ip.Output()
	res := make([]float32, out.Elems())
	for i := range res {
		res[i] = out.Scale * float32(int32(buf[i])-out.ZeroPoint)
	}
	return res
}

// Invoke runs all ops in order.
func (ip *Interpreter) Invoke() error {
	for i, op := range ip.model.Ops {
		if err := kernels.Run(ip.model, op, ip.ctxs[i], ip.bufs); err != nil {
			return fmt.Errorf("tflm: op %d: %w", i, err)
		}
	}
	return nil
}

// Classify is a convenience wrapper: set input, invoke, return the argmax
// class and its dequantized score.
func (ip *Interpreter) Classify(x *tensor.Tensor) (int, float32, error) {
	if err := ip.SetInputFloat(x); err != nil {
		return 0, 0, err
	}
	if err := ip.Invoke(); err != nil {
		return 0, 0, err
	}
	out := ip.OutputFloat()
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best, out[best], nil
}
