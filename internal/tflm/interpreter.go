package tflm

import (
	"fmt"
	"math"
	"time"

	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tensor"
)

// Interpreter executes a graph.Model, mirroring TFLM's MicroInterpreter:
// construct, AllocateTensors (memory planning + op preparation), set the
// input, Invoke, read the output.
type Interpreter struct {
	model  *graph.Model
	plan   *Plan
	engine kernels.Engine
	arena  []int8
	// bufs[i] is tensor i's slice into the arena.
	bufs [][]int8
	// scratch is the Gemm engine's im2col region, the tail of the arena
	// (planner-accounted, see Plan.ScratchBytes).
	scratch []int8
	ctxs    []*kernels.Ctx
	// opTimer, when non-nil, receives each op's wall time during Invoke.
	// The nil check is hoisted out of the hot loop so the disabled case
	// costs one branch per Invoke, not per op.
	opTimer OpTimerFunc
}

// OpTimerFunc observes one executed op: its index in the model's op
// list, kind, name, and wall-clock nanoseconds. It is called inline on
// the invoke path, so implementations must be cheap and must not block.
type OpTimerFunc func(index int, kind graph.OpKind, name string, ns int64)

// SetOpTimer installs (or with nil, removes) the per-op timing hook.
// Not safe to call concurrently with Invoke — profile on an interpreter
// you own, e.g. one checked out of a pool.
func (ip *Interpreter) SetOpTimer(fn OpTimerFunc) { ip.opTimer = fn }

// OpTiming is one row of a profiled invoke: measured wall time for one
// op, ready to join against the mcu cost model's predicted cycles.
type OpTiming struct {
	Index int
	Kind  graph.OpKind
	Name  string
	Ns    int64
}

// NewInterpreter plans memory and prepares kernels for the default
// (parallel GEMM) engine. arenaLimit (bytes) bounds the activation arena;
// pass 0 for unlimited (host-side use). It fails — like TFLM — if the
// model contains unsupported ops or the arena does not fit.
func NewInterpreter(m *graph.Model, arenaLimit int) (*Interpreter, error) {
	return NewInterpreterWithEngine(m, arenaLimit, kernels.Default)
}

// NewInterpreterWithEngine is NewInterpreter with an explicit kernel
// engine — kernels.Reference for the naive baseline, kernels.Gemm for the
// im2col+GEMM parallel path. An interpreter is not safe for concurrent
// Invoke calls (it owns one arena), but distinct interpreters may run
// concurrently.
func NewInterpreterWithEngine(m *graph.Model, arenaLimit int, eng kernels.Engine) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for _, op := range m.Ops {
		if op.Kind == graph.OpTransposedConv {
			return nil, fmt.Errorf("tflm: model %s: operator %s not supported by the runtime", m.Name, op.Kind)
		}
	}
	for _, t := range m.Tensors {
		// 4-bit activations pack two per byte in the memory plan (that is
		// the point of the §5.1.3 emulation — smaller arenas), but the
		// host kernels execute one int8 element per byte, so such models
		// are planner/latency artifacts, not executable here. Refuse
		// cleanly rather than slicing past the packed arena.
		if t.Bits == 4 {
			return nil, fmt.Errorf("tflm: model %s: 4-bit activations are a memory/latency emulation; the host runtime executes int8 only", m.Name)
		}
	}
	plan, err := PlanMemory(m)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, err
	}
	if arenaLimit > 0 && plan.ArenaBytes > arenaLimit {
		return nil, fmt.Errorf("tflm: model %s needs %d arena bytes, limit %d",
			m.Name, plan.ArenaBytes, arenaLimit)
	}
	// Engines that use no scratch (Reference) get a bare activation
	// arena; Gemm interpreters carry the planner-accounted im2col tail.
	scratchBytes := alignUp(eng.ScratchBytes(m))
	ip := &Interpreter{
		model:  m,
		plan:   plan,
		engine: eng,
		arena:  make([]int8, plan.ArenaBytes+scratchBytes),
		bufs:   make([][]int8, len(m.Tensors)),
		ctxs:   make([]*kernels.Ctx, len(m.Ops)),
	}
	for _, a := range plan.Allocations {
		t := m.Tensors[a.TensorID]
		ip.bufs[a.TensorID] = ip.arena[a.Offset : a.Offset+t.Elems()]
	}
	ip.scratch = ip.arena[plan.ArenaBytes:]
	for i, op := range m.Ops {
		switch op.Kind {
		case graph.OpConv2D, graph.OpDWConv2D, graph.OpDense:
			ip.ctxs[i] = kernels.PrepareConv(m, op)
		}
	}
	return ip, nil
}

// Model returns the underlying model.
func (ip *Interpreter) Model() *graph.Model { return ip.model }

// ArenaBytes returns the interpreter's total arena size (activations plus
// engine scratch) — what one pooled replica of this model costs in RAM.
func (ip *Interpreter) ArenaBytes() int { return len(ip.arena) }

// Reset zeroes the activation arena and scratch region, returning the
// interpreter to its freshly allocated state. Serving pools call it before
// reusing an interpreter whose last Invoke failed, so a partial execution
// cannot leak stale activations into the next request. It never fails and
// keeps the memory plan and prepared kernels intact.
func (ip *Interpreter) Reset() {
	for i := range ip.arena {
		ip.arena[i] = 0
	}
}

// Plan returns the memory plan.
func (ip *Interpreter) Plan() *Plan { return ip.plan }

// Input returns the raw quantized input buffer.
func (ip *Interpreter) Input() []int8 { return ip.bufs[ip.model.Input] }

// Output returns the raw quantized output buffer.
func (ip *Interpreter) Output() []int8 { return ip.bufs[ip.model.Output] }

// SetInputFloat quantizes a float tensor (shape [h,w,c] or flat of the
// right size) into the input buffer.
func (ip *Interpreter) SetInputFloat(x *tensor.Tensor) error {
	in := ip.model.Tensors[ip.model.Input]
	if x.Len() != in.Elems() {
		return fmt.Errorf("tflm: input has %d elements, model wants %d", x.Len(), in.Elems())
	}
	lo, hi := int32(-128), int32(127)
	if in.Bits == 4 {
		lo, hi = -8, 7
	}
	buf := ip.Input()
	for i, v := range x.Data {
		q := int32(math.Round(float64(v)/float64(in.Scale))) + in.ZeroPoint
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		buf[i] = int8(q)
	}
	return nil
}

// OutputFloat dequantizes the output buffer.
func (ip *Interpreter) OutputFloat() []float32 {
	out := ip.model.Tensors[ip.model.Output]
	buf := ip.Output()
	res := make([]float32, out.Elems())
	for i := range res {
		res[i] = out.Scale * float32(int32(buf[i])-out.ZeroPoint)
	}
	return res
}

// Invoke runs all ops in order on the interpreter's engine. Errors name
// the failing op's index, type and name so a CI benchmark failure is
// diagnosable from the log alone.
func (ip *Interpreter) Invoke() error {
	if ip.opTimer != nil {
		return ip.invokeTimed()
	}
	for i, op := range ip.model.Ops {
		if err := kernels.RunWith(ip.engine, ip.model, op, ip.ctxs[i], ip.bufs, ip.scratch); err != nil {
			return fmt.Errorf("tflm: model %s: op %d (%s %q): %w", ip.model.Name, i, op.Kind, op.Name, err)
		}
	}
	return nil
}

// invokeTimed is Invoke with the per-op timer active, kept out of line
// so the common untimed loop stays branch-free per op.
func (ip *Interpreter) invokeTimed() error {
	for i, op := range ip.model.Ops {
		start := time.Now()
		err := kernels.RunWith(ip.engine, ip.model, op, ip.ctxs[i], ip.bufs, ip.scratch)
		ip.opTimer(i, op.Kind, op.Name, time.Since(start).Nanoseconds())
		if err != nil {
			return fmt.Errorf("tflm: model %s: op %d (%s %q): %w", ip.model.Name, i, op.Kind, op.Name, err)
		}
	}
	return nil
}

// ProfileInvoke runs one invoke with a temporary timing hook and
// returns the measured per-op table in execution order. Any previously
// installed hook is restored afterwards. The input buffer is used as-is
// (set it first, or profile on whatever the arena holds).
func (ip *Interpreter) ProfileInvoke() ([]OpTiming, error) {
	prev := ip.opTimer
	timings := make([]OpTiming, 0, len(ip.model.Ops))
	ip.opTimer = func(index int, kind graph.OpKind, name string, ns int64) {
		timings = append(timings, OpTiming{Index: index, Kind: kind, Name: name, Ns: ns})
	}
	err := ip.Invoke()
	ip.opTimer = prev
	if err != nil {
		return nil, err
	}
	return timings, nil
}

// InvokeBatch runs the model once per input buffer, reusing the memory
// plan and prepared kernels across the whole batch, and returns one
// freshly allocated quantized output per input. Each input must hold
// exactly the model's input element count.
func (ip *Interpreter) InvokeBatch(inputs [][]int8) ([][]int8, error) {
	in := ip.model.Tensors[ip.model.Input]
	outs := make([][]int8, len(inputs))
	for b, x := range inputs {
		if len(x) != in.Elems() {
			return nil, fmt.Errorf("tflm: model %s: batch input %d has %d elements, model wants %d",
				ip.model.Name, b, len(x), in.Elems())
		}
		copy(ip.Input(), x)
		if err := ip.Invoke(); err != nil {
			return nil, fmt.Errorf("tflm: batch input %d: %w", b, err)
		}
		out := make([]int8, len(ip.Output()))
		copy(out, ip.Output())
		outs[b] = out
	}
	return outs, nil
}

// Classify is a convenience wrapper: set input, invoke, return the argmax
// class and its dequantized score.
func (ip *Interpreter) Classify(x *tensor.Tensor) (int, float32, error) {
	if err := ip.SetInputFloat(x); err != nil {
		return 0, 0, err
	}
	if err := ip.Invoke(); err != nil {
		return 0, 0, err
	}
	out := ip.OutputFloat()
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best, out[best], nil
}

// ClassifyBatch classifies a batch of float inputs through one planned
// interpreter, amortizing memory planning and kernel preparation across
// the batch. It returns the argmax class and dequantized top score per
// input.
func (ip *Interpreter) ClassifyBatch(xs []*tensor.Tensor) ([]int, []float32, error) {
	classes := make([]int, len(xs))
	scores := make([]float32, len(xs))
	for i, x := range xs {
		cls, score, err := ip.Classify(x)
		if err != nil {
			return nil, nil, fmt.Errorf("tflm: batch input %d: %w", i, err)
		}
		classes[i] = cls
		scores[i] = score
	}
	return classes, scores, nil
}
