package tflm

import (
	"fmt"
	"math"
	"time"

	"micronets/internal/graph"
	"micronets/internal/kernels"
	"micronets/internal/tensor"
)

// Interpreter executes a graph.Model, mirroring TFLM's MicroInterpreter:
// construct, AllocateTensors (memory planning + op preparation), set the
// input, Invoke, read the output.
//
// All model-derived state (plan, packed weights) lives in the shared,
// immutable Prepared; the interpreter owns only its private arena and
// scratch plus per-op executors bound once at construction. A warm
// Invoke therefore performs zero heap allocations (enforced by
// TestInvokeZeroAllocs) and replicas of one Prepared share one weight
// copy.
type Interpreter struct {
	prep   *Prepared
	model  *graph.Model
	plan   *Plan
	engine kernels.Engine
	arena  []int8
	// bufs[i] is tensor i's slice into the arena.
	bufs [][]int8
	// scratch is this replica's private mutable kernel state: the im2col
	// region (the planner-accounted arena tail), depthwise accumulators,
	// softmax staging, and the reusable fork-join context.
	scratch *kernels.Scratch
	// steps[i] executes op i: bound once against the arena and the shared
	// prepared contexts, so the invoke loop is just calling them in order.
	steps []func()
	// opTimer, when non-nil, receives each op's wall time during Invoke.
	// The nil check is hoisted out of the hot loop so the disabled case
	// costs one branch per Invoke, not per op.
	opTimer OpTimerFunc
}

// OpTimerFunc observes one executed op: its index in the model's op
// list, kind, name, and wall-clock nanoseconds. It is called inline on
// the invoke path, so implementations must be cheap and must not block.
type OpTimerFunc func(index int, kind graph.OpKind, name string, ns int64)

// SetOpTimer installs (or with nil, removes) the per-op timing hook.
// Not safe to call concurrently with Invoke — profile on an interpreter
// you own, e.g. one checked out of a pool.
func (ip *Interpreter) SetOpTimer(fn OpTimerFunc) { ip.opTimer = fn }

// OpTiming is one row of a profiled invoke: measured wall time for one
// op, ready to join against the mcu cost model's predicted cycles.
type OpTiming struct {
	Index int
	Kind  graph.OpKind
	Name  string
	Ns    int64
}

// NewInterpreter plans memory and prepares kernels for the default
// (parallel GEMM) engine. arenaLimit (bytes) bounds the activation arena;
// pass 0 for unlimited (host-side use). It fails — like TFLM — if the
// model contains unsupported ops or the arena does not fit.
func NewInterpreter(m *graph.Model, arenaLimit int) (*Interpreter, error) {
	return NewInterpreterWithEngine(m, arenaLimit, kernels.Default)
}

// NewInterpreterWithEngine is NewInterpreter with an explicit kernel
// engine — kernels.Reference for the naive baseline, kernels.Gemm /
// kernels.Wide for the im2col+GEMM parallel paths. An interpreter is not
// safe for concurrent Invoke calls (it owns one arena), but distinct
// interpreters may run concurrently. Callers building several replicas
// of one model should Prepare once and stamp interpreters from that
// instead, sharing the packed weights.
func NewInterpreterWithEngine(m *graph.Model, arenaLimit int, eng kernels.Engine) (*Interpreter, error) {
	prep, err := PrepareWithEngine(m, eng)
	if err != nil {
		return nil, err
	}
	return prep.NewInterpreter(arenaLimit)
}

// Model returns the underlying model.
func (ip *Interpreter) Model() *graph.Model { return ip.model }

// Prepared returns the shared prepared state this interpreter executes
// over (never nil).
func (ip *Interpreter) Prepared() *Prepared { return ip.prep }

// ArenaBytes returns the interpreter's total arena size (activations plus
// engine scratch) — what one pooled replica of this model costs in RAM
// beyond the shared prepared weights.
func (ip *Interpreter) ArenaBytes() int { return len(ip.arena) }

// Reset zeroes the activation arena and scratch region, returning the
// interpreter to its freshly allocated state. Serving pools call it before
// reusing an interpreter whose last Invoke failed, so a partial execution
// cannot leak stale activations into the next request. It never fails and
// keeps the memory plan and prepared kernels intact.
func (ip *Interpreter) Reset() {
	for i := range ip.arena {
		ip.arena[i] = 0
	}
}

// Plan returns the memory plan.
func (ip *Interpreter) Plan() *Plan { return ip.plan }

// Input returns the raw quantized input buffer.
func (ip *Interpreter) Input() []int8 { return ip.bufs[ip.model.Input] }

// Output returns the raw quantized output buffer.
func (ip *Interpreter) Output() []int8 { return ip.bufs[ip.model.Output] }

// quantRange returns the representable quantized range for an activation
// bit width — the single home for the 4-bit bounds, ready for when 4-bit
// execution lands (today the runtime rejects 4-bit activations at
// Prepare time, so only the 8-bit arm is reachable).
func quantRange(bits int) (lo, hi int32) {
	if bits == 4 {
		return -8, 7
	}
	return -128, 127
}

// SetInputFloat quantizes a float tensor (shape [h,w,c] or flat of the
// right size) into the input buffer.
func (ip *Interpreter) SetInputFloat(x *tensor.Tensor) error {
	in := ip.model.Tensors[ip.model.Input]
	if x.Len() != in.Elems() {
		return fmt.Errorf("tflm: input has %d elements, model wants %d", x.Len(), in.Elems())
	}
	lo, hi := quantRange(in.Bits)
	buf := ip.Input()
	for i, v := range x.Data {
		q := int32(math.Round(float64(v)/float64(in.Scale))) + in.ZeroPoint
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		buf[i] = int8(q)
	}
	return nil
}

// OutputFloat dequantizes the output buffer.
func (ip *Interpreter) OutputFloat() []float32 {
	out := ip.model.Tensors[ip.model.Output]
	buf := ip.Output()
	res := make([]float32, out.Elems())
	for i := range res {
		res[i] = out.Scale * float32(int32(buf[i])-out.ZeroPoint)
	}
	return res
}

// Invoke runs all ops in order on the interpreter's engine. Dispatch,
// shape derivation, and scratch sizing all happened at bind time, so the
// warm path is a plain loop over pre-bound executors: zero allocations,
// no failure modes (unsupported ops were rejected at construction).
func (ip *Interpreter) Invoke() error {
	if ip.opTimer != nil {
		return ip.invokeTimed()
	}
	for _, step := range ip.steps {
		step()
	}
	return nil
}

// invokeTimed is Invoke with the per-op timer active, kept out of line
// so the common untimed loop stays branch-free per op.
func (ip *Interpreter) invokeTimed() error {
	for i, op := range ip.model.Ops {
		start := time.Now()
		ip.steps[i]()
		ip.opTimer(i, op.Kind, op.Name, time.Since(start).Nanoseconds())
	}
	return nil
}

// ProfileInvoke runs one invoke with a temporary timing hook and
// returns the measured per-op table in execution order. Any previously
// installed hook is restored afterwards. The input buffer is used as-is
// (set it first, or profile on whatever the arena holds).
func (ip *Interpreter) ProfileInvoke() ([]OpTiming, error) {
	prev := ip.opTimer
	timings := make([]OpTiming, 0, len(ip.model.Ops))
	ip.opTimer = func(index int, kind graph.OpKind, name string, ns int64) {
		timings = append(timings, OpTiming{Index: index, Kind: kind, Name: name, Ns: ns})
	}
	err := ip.Invoke()
	ip.opTimer = prev
	if err != nil {
		return nil, err
	}
	return timings, nil
}

// InvokeBatchInto runs the model once per input buffer, writing row b's
// quantized output into outs[b] — the allocation-free form the serving
// batcher uses with response buffers it owns. Each input must hold
// exactly the model's input element count and each output buffer its
// output element count.
func (ip *Interpreter) InvokeBatchInto(inputs, outs [][]int8) error {
	in := ip.model.Tensors[ip.model.Input]
	nOut := ip.model.Tensors[ip.model.Output].Elems()
	if len(outs) != len(inputs) {
		return fmt.Errorf("tflm: model %s: %d outputs for %d inputs", ip.model.Name, len(outs), len(inputs)) //microvet:ignore hotpathalloc validation rejection: building the error IS the cold path here
	}
	for b, x := range inputs {
		if len(x) != in.Elems() {
			//microvet:ignore hotpathalloc validation rejection: building the error IS the cold path here
			return fmt.Errorf("tflm: model %s: batch input %d has %d elements, model wants %d",
				ip.model.Name, b, len(x), in.Elems())
		}
		if len(outs[b]) != nOut {
			//microvet:ignore hotpathalloc validation rejection: building the error IS the cold path here
			return fmt.Errorf("tflm: model %s: batch output %d has %d elements, model emits %d",
				ip.model.Name, b, len(outs[b]), nOut)
		}
		copy(ip.Input(), x)
		if err := ip.Invoke(); err != nil {
			return fmt.Errorf("tflm: batch input %d: %w", b, err) //microvet:ignore hotpathalloc validation rejection: building the error IS the cold path here
		}
		copy(outs[b], ip.Output())
	}
	return nil
}

// InvokeBatch is InvokeBatchInto returning freshly allocated outputs,
// for callers without reusable buffers.
func (ip *Interpreter) InvokeBatch(inputs [][]int8) ([][]int8, error) {
	outs := make([][]int8, len(inputs))
	nOut := len(ip.Output())
	for b := range outs {
		outs[b] = make([]int8, nOut)
	}
	if err := ip.InvokeBatchInto(inputs, outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// Classify is a convenience wrapper: set input, invoke, return the argmax
// class and its dequantized score.
func (ip *Interpreter) Classify(x *tensor.Tensor) (int, float32, error) {
	if err := ip.SetInputFloat(x); err != nil {
		return 0, 0, err
	}
	if err := ip.Invoke(); err != nil {
		return 0, 0, err
	}
	out := ip.OutputFloat()
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best, out[best], nil
}

// ClassifyBatch classifies a batch of float inputs through one planned
// interpreter, amortizing memory planning and kernel preparation across
// the batch. It returns the argmax class and dequantized top score per
// input.
func (ip *Interpreter) ClassifyBatch(xs []*tensor.Tensor) ([]int, []float32, error) {
	classes := make([]int, len(xs))
	scores := make([]float32, len(xs))
	for i, x := range xs {
		cls, score, err := ip.Classify(x)
		if err != nil {
			return nil, nil, fmt.Errorf("tflm: batch input %d: %w", i, err)
		}
		classes[i] = cls
		scores[i] = score
	}
	return classes, scores, nil
}
