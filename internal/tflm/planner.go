package tflm

import (
	"fmt"
	"sort"

	"micronets/internal/graph"
	"micronets/internal/kernels"
)

// Alignment of arena allocations, matching TFLM's kBufferAlignment.
const arenaAlign = 16

// Allocation is one tensor's placement in the arena.
type Allocation struct {
	TensorID int
	Offset   int
	Size     int
	FirstUse int // op index producing it (-1 for the model input)
	LastUse  int // last op index consuming it
}

// Plan is the memory plan for a model. ArenaBytes covers the activation
// tensors (the deployable SRAM number reported in the paper's tables);
// ScratchBytes is the host-side im2col region the Gemm kernel engine
// needs, placed immediately after the arena so all inference memory is
// planner-accounted rather than hidden in ad-hoc kernel allocations. It
// is excluded from device-fit checks because MCU deployments run the
// direct (CMSIS-NN-style) convolution instead.
type Plan struct {
	Allocations  []Allocation
	ArenaBytes   int
	ScratchBytes int
}

// TotalBytes is the full host allocation: activation arena plus im2col
// scratch.
func (p *Plan) TotalBytes() int { return p.ArenaBytes + p.ScratchBytes }

// lifetimes computes [firstUse, lastUse] op-index ranges per tensor.
// The model input is alive from -1; the model output stays alive to the
// final op.
func lifetimes(m *graph.Model) map[int]*Allocation {
	live := map[int]*Allocation{}
	get := func(id int) *Allocation {
		a, ok := live[id]
		if !ok {
			a = &Allocation{TensorID: id, FirstUse: -2, LastUse: -2}
			live[id] = a
		}
		return a
	}
	in := get(m.Input)
	in.FirstUse = -1
	in.LastUse = -1
	for i, op := range m.Ops {
		for _, tid := range op.Inputs {
			a := get(tid)
			if a.LastUse < i {
				a.LastUse = i
			}
		}
		o := get(op.Output)
		if o.FirstUse == -2 {
			o.FirstUse = i
		}
		if o.LastUse < i {
			o.LastUse = i
		}
	}
	out := get(m.Output)
	out.LastUse = len(m.Ops) - 1
	return live
}

func alignUp(n int) int {
	return (n + arenaAlign - 1) / arenaAlign * arenaAlign
}

// PlanMemory lays out all activation tensors in a single arena using the
// greedy-by-size strategy of TFLM's GreedyMemoryPlanner: tensors are
// processed largest-first and placed at the lowest offset that does not
// overlap any already-placed tensor with an intersecting lifetime.
func PlanMemory(m *graph.Model) (*Plan, error) {
	return PlanMemoryBatch(m, 1)
}

// PlanMemoryBatch plans the arena for a batched invocation in which every
// activation tensor carries a leading batch dimension: each buffer is
// batch times its single-row size (lifetimes are unchanged — batching
// scales tensors, not the schedule). Batch 1 is exactly PlanMemory. The
// im2col scratch region does NOT scale with batch: the kernels process
// one row at a time and reuse the same tiles. Serving capacity planning
// uses this to answer "what would a batch-b replica cost in RAM"; the
// property tests pin that the result is monotonic in batch and never
// below the largest single-op working set.
func PlanMemoryBatch(m *graph.Model, batch int) (*Plan, error) {
	if batch < 1 {
		return nil, fmt.Errorf("tflm: batch %d must be >= 1", batch)
	}
	live := lifetimes(m)
	var allocs []*Allocation
	for id, a := range live {
		if a.FirstUse == -2 {
			return nil, fmt.Errorf("tflm: tensor %d is never used", id)
		}
		a.Size = alignUp(batch * m.Tensors[id].Bytes())
		allocs = append(allocs, a)
	}
	sort.Slice(allocs, func(i, j int) bool {
		if allocs[i].Size != allocs[j].Size {
			return allocs[i].Size > allocs[j].Size
		}
		return allocs[i].TensorID < allocs[j].TensorID
	})
	var placed []*Allocation
	arena := 0
	overlapsInTime := func(a, b *Allocation) bool {
		return a.FirstUse <= b.LastUse && b.FirstUse <= a.LastUse
	}
	for _, a := range allocs {
		// Gather occupied intervals from time-overlapping placed tensors.
		type iv struct{ lo, hi int }
		var busy []iv
		for _, p := range placed {
			if overlapsInTime(a, p) {
				busy = append(busy, iv{p.Offset, p.Offset + p.Size})
			}
		}
		sort.Slice(busy, func(i, j int) bool { return busy[i].lo < busy[j].lo })
		off := 0
		for _, b := range busy {
			if off+a.Size <= b.lo {
				break
			}
			if b.hi > off {
				off = b.hi
			}
		}
		a.Offset = off
		if off+a.Size > arena {
			arena = off + a.Size
		}
		placed = append(placed, a)
	}
	plan := &Plan{ArenaBytes: arena, ScratchBytes: alignUp(kernels.ScratchBytes(m))}
	sort.Slice(placed, func(i, j int) bool { return placed[i].TensorID < placed[j].TensorID })
	for _, a := range placed {
		plan.Allocations = append(plan.Allocations, *a)
	}
	return plan, nil
}

// Verify checks the non-overlap invariant: any two allocations with
// intersecting lifetimes must occupy disjoint byte ranges. Used by tests
// and as a debug assertion.
func (p *Plan) Verify() error {
	for i := range p.Allocations {
		for j := i + 1; j < len(p.Allocations); j++ {
			a, b := &p.Allocations[i], &p.Allocations[j]
			timeOverlap := a.FirstUse <= b.LastUse && b.FirstUse <= a.LastUse
			spaceOverlap := a.Offset < b.Offset+b.Size && b.Offset < a.Offset+a.Size
			if timeOverlap && spaceOverlap {
				return fmt.Errorf("tflm: tensors %d and %d overlap in time and space",
					a.TensorID, b.TensorID)
			}
		}
	}
	return nil
}

// NaiveArenaBytes returns the arena size without buffer reuse (sum of all
// tensor buffers) — the baseline that shows how much the planner saves.
func NaiveArenaBytes(m *graph.Model) int {
	s := 0
	for _, t := range m.Tensors {
		s += alignUp(t.Bytes())
	}
	return s
}
