package dsp

import (
	"math"

	"micronets/internal/tensor"
)

// HzToMel converts frequency to the HTK mel scale.
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts mel back to frequency.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank builds numFilters triangular filters over fftBins one-sided
// spectrum bins for the given sample rate and frequency range. The result
// is [numFilters][fftBins] weights.
func MelFilterbank(numFilters, fftSize, sampleRate int, lowHz, highHz float64) [][]float64 {
	bins := fftSize/2 + 1
	lowMel := HzToMel(lowHz)
	highMel := HzToMel(highHz)
	// numFilters+2 equally spaced mel points.
	points := make([]float64, numFilters+2)
	for i := range points {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(numFilters+1)
		points[i] = MelToHz(mel) * float64(fftSize) / float64(sampleRate)
	}
	fb := make([][]float64, numFilters)
	for f := 0; f < numFilters; f++ {
		fb[f] = make([]float64, bins)
		left, center, right := points[f], points[f+1], points[f+2]
		for b := 0; b < bins; b++ {
			x := float64(b)
			switch {
			case x > left && x < center:
				fb[f][b] = (x - left) / (center - left)
			case x >= center && x < right:
				fb[f][b] = (right - x) / (right - center)
			}
		}
	}
	return fb
}

// FeatureConfig describes an audio-to-features pipeline.
type FeatureConfig struct {
	SampleRate int
	FrameLen   int // samples per frame
	Hop        int // samples between frames
	NumMel     int
	NumCoeffs  int // MFCC coefficients kept; 0 means log-mel output (no DCT)
	LowHz      float64
	HighHz     float64
}

// KWSConfig reproduces the paper's keyword-spotting front end: 40 ms
// frames, 20 ms stride, 40 mel filters, 10 MFCCs — a 1 s clip becomes a
// 49x10x1 input (§4.2).
func KWSConfig() FeatureConfig {
	return FeatureConfig{
		SampleRate: 16000,
		FrameLen:   640, // 40 ms
		Hop:        320, // 20 ms
		NumMel:     40,
		NumCoeffs:  10,
		LowHz:      20,
		HighHz:     4000,
	}
}

// ADConfig reproduces the anomaly-detection front end: 64 ms frames, 32 ms
// hop, 64 log-mel bins (§4.3).
func ADConfig() FeatureConfig {
	return FeatureConfig{
		SampleRate: 16000,
		FrameLen:   1024, // 64 ms
		Hop:        512,  // 32 ms
		NumMel:     64,
		NumCoeffs:  0, // log-mel, no DCT
		LowHz:      20,
		HighHz:     8000,
	}
}

// Extract converts a mono signal into a [frames, features, 1] tensor of
// MFCCs (NumCoeffs > 0) or log-mel energies (NumCoeffs == 0).
func Extract(cfg FeatureConfig, signal []float64) *tensor.Tensor {
	fftSize := NextPow2(cfg.FrameLen)
	window := HannWindow(cfg.FrameLen)
	fb := MelFilterbank(cfg.NumMel, fftSize, cfg.SampleRate, cfg.LowHz, cfg.HighHz)
	frames := Frame(signal, cfg.FrameLen, cfg.Hop)

	feat := cfg.NumCoeffs
	if feat == 0 {
		feat = cfg.NumMel
	}
	out := tensor.New(len(frames), feat, 1)
	buf := make([]float64, cfg.FrameLen)
	logmel := make([]float64, cfg.NumMel)
	for fi, frame := range frames {
		for i := range frame {
			buf[i] = frame[i] * window[i]
		}
		ps := PowerSpectrum(buf, fftSize)
		for m := 0; m < cfg.NumMel; m++ {
			var s float64
			for b, w := range fb[m] {
				if w != 0 {
					s += w * ps[b]
				}
			}
			logmel[m] = math.Log(s + 1e-6)
		}
		var row []float64
		if cfg.NumCoeffs > 0 {
			row = DCT2(logmel, cfg.NumCoeffs)
		} else {
			row = logmel
		}
		for j, v := range row {
			out.Data[fi*feat+j] = float32(v)
		}
	}
	return out
}

// NumFrames returns how many frames Extract will produce for a signal of
// the given number of samples.
func (cfg FeatureConfig) NumFrames(samples int) int {
	if samples < cfg.FrameLen {
		return 0
	}
	return (samples-cfg.FrameLen)/cfg.Hop + 1
}

// StackSpectrogramImages stacks consecutive spectrogram frames into square
// images of size [size, size], advancing by stride frames per image —
// the paper's "stack 64 frames together to get 64 by 64 images and the
// next image has an overlap of 44 frames" (stride 20).
func StackSpectrogramImages(spec *tensor.Tensor, size, stride int) []*tensor.Tensor {
	frames := spec.Shape[0]
	feat := spec.Shape[1]
	var images []*tensor.Tensor
	for start := 0; start+size <= frames; start += stride {
		img := tensor.New(size, feat, 1)
		copy(img.Data, spec.Data[start*feat:(start+size)*feat])
		images = append(images, img)
	}
	return images
}

// NormalizeMeanStd standardizes a tensor in place to zero mean, unit
// variance (per-tensor), returning it for chaining.
func NormalizeMeanStd(t *tensor.Tensor) *tensor.Tensor {
	m := float64(tensor.Mean(t))
	var ss float64
	for _, v := range t.Data {
		d := float64(v) - m
		ss += d * d
	}
	std := math.Sqrt(ss/float64(t.Len()) + 1e-8)
	for i, v := range t.Data {
		t.Data[i] = float32((float64(v) - m) / std)
	}
	return t
}
