// Package dsp implements the audio feature extraction front end used by
// the keyword-spotting and anomaly-detection tasks: framing, windowing, a
// radix-2 FFT, mel filterbanks, log-mel spectrograms and MFCCs, matching
// the preprocessing described in §4.2 and §4.3 of the paper.
package dsp

import (
	"fmt"
	"math"
)

// FFT computes an in-place iterative radix-2 Cooley-Tukey FFT of the
// complex sequence (re, im). len(re) must be a power of two.
func FFT(re, im []float64) {
	n := len(re)
	if n != len(im) {
		panic("dsp: FFT re/im length mismatch")
	}
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i0, i1 := start+k, start+k+half
				tr := re[i1]*cr - im[i1]*ci
				ti := re[i1]*ci + im[i1]*cr
				re[i1] = re[i0] - tr
				im[i1] = im[i0] - ti
				re[i0] += tr
				im[i0] += ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PowerSpectrum returns the one-sided power spectrum (n/2+1 bins) of a real
// signal zero-padded to fftSize (a power of two).
func PowerSpectrum(signal []float64, fftSize int) []float64 {
	re := make([]float64, fftSize)
	im := make([]float64, fftSize)
	copy(re, signal)
	FFT(re, im)
	out := make([]float64, fftSize/2+1)
	for i := range out {
		out[i] = re[i]*re[i] + im[i]*im[i]
	}
	return out
}

// HannWindow returns an n-point periodic Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	return w
}

// Frame splits signal into frames of frameLen samples every hop samples.
// The tail that does not fill a whole frame is dropped.
func Frame(signal []float64, frameLen, hop int) [][]float64 {
	if frameLen <= 0 || hop <= 0 {
		panic("dsp: Frame needs positive frameLen and hop")
	}
	var frames [][]float64
	for start := 0; start+frameLen <= len(signal); start += hop {
		f := make([]float64, frameLen)
		copy(f, signal[start:start+frameLen])
		frames = append(frames, f)
	}
	return frames
}

// DCT2 computes the orthonormal DCT-II of x, returning the first numCoeffs
// coefficients — the final MFCC step.
func DCT2(x []float64, numCoeffs int) []float64 {
	n := len(x)
	out := make([]float64, numCoeffs)
	for k := 0; k < numCoeffs; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		out[k] = s * scale
	}
	return out
}
