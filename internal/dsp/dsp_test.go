package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is an O(n^2) reference implementation.
func naiveDFT(x []float64) (re, im []float64) {
	n := len(x)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			re[k] += x[t] * math.Cos(ang)
			im[k] += x[t] * math.Sin(ang)
		}
	}
	return re, im
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		wre, wim := naiveDFT(x)
		re := append([]float64(nil), x...)
		im := make([]float64, n)
		FFT(re, im)
		for k := 0; k < n; k++ {
			if math.Abs(re[k]-wre[k]) > 1e-6*float64(n) || math.Abs(im[k]-wim[k]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: (%g,%g) vs naive (%g,%g)", n, k, re[k], im[k], wre[k], wim[k])
			}
		}
	}
}

func TestFFTPureToneBin(t *testing.T) {
	// A pure tone at bin 8 of a 64-point FFT puts all one-sided energy there.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	ps := PowerSpectrum(x, n)
	best := 0
	for i, v := range ps {
		if v > ps[best] {
			best = i
		}
	}
	if best != 8 {
		t.Fatalf("tone detected at bin %d, want 8", best)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += v * v
		}
		re := append([]float64(nil), x...)
		im := make([]float64, n)
		FFT(re, im)
		var freqEnergy float64
		for i := range re {
			freqEnergy += re[i]*re[i] + im[i]*im[i]
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*timeEnergy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 640: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHannWindowShape(t *testing.T) {
	w := HannWindow(64)
	if w[0] != 0 {
		t.Fatalf("Hann start %v, want 0", w[0])
	}
	if math.Abs(w[32]-1) > 1e-9 {
		t.Fatalf("Hann midpoint %v, want 1", w[32])
	}
}

func TestFrameCount(t *testing.T) {
	sig := make([]float64, 16000) // 1s at 16 kHz
	frames := Frame(sig, 640, 320)
	if len(frames) != 49 {
		t.Fatalf("1s KWS framing gives %d frames, want 49 (paper §4.2)", len(frames))
	}
	cfg := KWSConfig()
	if cfg.NumFrames(16000) != 49 {
		t.Fatalf("NumFrames = %d, want 49", cfg.NumFrames(16000))
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{20, 300, 1000, 4000, 8000} {
		back := MelToHz(HzToMel(hz))
		if math.Abs(back-hz) > 1e-6*hz {
			t.Fatalf("mel round trip %v -> %v", hz, back)
		}
	}
}

func TestMelFilterbankPartitionOfUnityish(t *testing.T) {
	fb := MelFilterbank(40, 1024, 16000, 20, 8000)
	if len(fb) != 40 {
		t.Fatalf("filter count %d", len(fb))
	}
	// Every filter must have non-negative weights summing > 0.
	for i, f := range fb {
		var s float64
		for _, w := range f {
			if w < 0 {
				t.Fatalf("filter %d has negative weight", i)
			}
			s += w
		}
		if s <= 0 {
			t.Fatalf("filter %d is empty", i)
		}
	}
	// Filters should be ordered by center frequency: peak bins increasing.
	prev := -1
	for i, f := range fb {
		peak := 0
		for b, w := range f {
			if w > f[peak] {
				peak = b
			}
		}
		if peak < prev {
			t.Fatalf("filter %d peak %d before previous %d", i, peak, prev)
		}
		prev = peak
	}
}

func TestDCT2OrthonormalDC(t *testing.T) {
	// DCT of a constant vector concentrates everything in coefficient 0.
	x := []float64{2, 2, 2, 2}
	c := DCT2(x, 4)
	if math.Abs(c[0]-4) > 1e-9 { // sqrt(1/4)*sum = 0.5*8
		t.Fatalf("DC coeff %v, want 4", c[0])
	}
	for k := 1; k < 4; k++ {
		if math.Abs(c[k]) > 1e-9 {
			t.Fatalf("AC coeff %d = %v, want 0", k, c[k])
		}
	}
}

func TestExtractKWSShape(t *testing.T) {
	cfg := KWSConfig()
	sig := make([]float64, 16000)
	rng := rand.New(rand.NewSource(2))
	for i := range sig {
		sig[i] = rng.NormFloat64() * 0.1
	}
	feat := Extract(cfg, sig)
	if feat.Shape[0] != 49 || feat.Shape[1] != 10 || feat.Shape[2] != 1 {
		t.Fatalf("KWS features shape %v, want [49 10 1]", feat.Shape)
	}
}

func TestExtractADShapeAndStacking(t *testing.T) {
	cfg := ADConfig()
	sig := make([]float64, 16000*3)
	rng := rand.New(rand.NewSource(3))
	for i := range sig {
		sig[i] = rng.NormFloat64() * 0.1
	}
	spec := Extract(cfg, sig)
	if spec.Shape[1] != 64 {
		t.Fatalf("AD features %v, want 64 bins", spec.Shape)
	}
	imgs := StackSpectrogramImages(spec, 64, 20)
	if len(imgs) == 0 {
		t.Fatal("no stacked images")
	}
	if imgs[0].Shape[0] != 64 || imgs[0].Shape[1] != 64 {
		t.Fatalf("stacked image shape %v", imgs[0].Shape)
	}
}

func TestExtractDistinguishesTones(t *testing.T) {
	// Two different pure tones must produce clearly different features; this
	// is the property the synthetic keyword dataset relies on.
	cfg := KWSConfig()
	mk := func(freq float64) []float64 {
		sig := make([]float64, 16000)
		for i := range sig {
			sig[i] = math.Sin(2 * math.Pi * freq * float64(i) / 16000)
		}
		return sig
	}
	a := Extract(cfg, mk(300))
	b := Extract(cfg, mk(1200))
	var dist float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Fatalf("tone features too close: %v", math.Sqrt(dist))
	}
}

func TestNormalizeMeanStd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sig := make([]float64, 16000)
	for i := range sig {
		sig[i] = rng.NormFloat64()*3 + 7
	}
	feat := Extract(KWSConfig(), sig)
	NormalizeMeanStd(feat)
	var mean, ss float64
	for _, v := range feat.Data {
		mean += float64(v)
	}
	mean /= float64(feat.Len())
	for _, v := range feat.Data {
		ss += (float64(v) - mean) * (float64(v) - mean)
	}
	std := math.Sqrt(ss / float64(feat.Len()))
	if math.Abs(mean) > 1e-4 || math.Abs(std-1) > 1e-3 {
		t.Fatalf("normalized mean=%v std=%v", mean, std)
	}
}
