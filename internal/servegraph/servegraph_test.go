package servegraph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// fakeBackend serves canned probability vectors keyed by model name. The
// input row's first element can select among several canned answers per
// model, so one test can steer a cascade's confidence per request.
type fakeBackend struct {
	models map[string]*fakeModel
}

type fakeModel struct {
	info ModelInfo
	// answers[k] is returned when round(x[0]) == k; answers[0] is the
	// default. Values are probabilities (Softmax=true) or logits.
	answers map[int][]float64
	err     error
	calls   int
}

func (b *fakeBackend) ModelInfo(name string) (ModelInfo, error) {
	m, ok := b.models[name]
	if !ok {
		return ModelInfo{}, fmt.Errorf("no model %q", name)
	}
	return m.info, nil
}

func (b *fakeBackend) Infer(_ context.Context, name string, x []float64) (Scored, error) {
	m, ok := b.models[name]
	if !ok {
		return Scored{}, fmt.Errorf("no model %q", name)
	}
	m.calls++
	if m.err != nil {
		return Scored{}, m.err
	}
	key := 0
	if len(x) > 0 {
		key = int(math.Round(x[0]))
	}
	scores, ok := m.answers[key]
	if !ok {
		scores = m.answers[0]
	}
	probs := scores
	if !m.info.Softmax {
		probs = Softmax(scores)
	}
	return Scored{Model: name, Version: m.info.Version, Scores: scores, Probs: probs}, nil
}

// newFake builds a backend with softmaxed 3-class models "small", "large",
// and "other" sharing a 2x2x1 input.
func newFake() *fakeBackend {
	mk := func(name string, version int, answers map[int][]float64) *fakeModel {
		return &fakeModel{
			info: ModelInfo{Name: name, Version: version, Task: "kws",
				InputH: 2, InputW: 2, InputC: 1, OutputElems: 3, Softmax: true},
			answers: answers,
		}
	}
	return &fakeBackend{models: map[string]*fakeModel{
		// small is confident (0.9) on input key 0, unsure (0.4) on key 1.
		"small": mk("small", 1, map[int][]float64{
			0: {0.9, 0.05, 0.05},
			1: {0.4, 0.35, 0.25},
		}),
		"large": mk("large", 1, map[int][]float64{
			0: {0.05, 0.9, 0.05},
			1: {0.1, 0.8, 0.1},
		}),
		"other": mk("other", 3, map[int][]float64{
			0: {0.2, 0.2, 0.6},
		}),
	}}
}

func leaf(model string) *NodeSpec { return &NodeSpec{Kind: KindModel, Model: model} }

func mustPut(t *testing.T, r *Registry, spec *Spec) *Graph {
	t.Helper()
	g, err := r.Put(spec)
	if err != nil {
		t.Fatalf("Put(%s): %v", spec.Name, err)
	}
	return g
}

// row returns a 4-element input whose first value selects the canned
// answer in fakeModel.answers.
func row(key int) []float64 { return []float64{float64(key), 0, 0, 0} }

func TestCascadeGateAndEscalation(t *testing.T) {
	fb := newFake()
	r := NewRegistry(fb)
	g := mustPut(t, r, &Spec{Name: "cas", Root: &NodeSpec{
		Kind: KindCascade, Name: "casnode", Threshold: 0.7,
		Children: []*NodeSpec{leaf("small"), leaf("large")},
	}})

	// Key 0: small answers with 0.9 >= 0.7 — the gate holds.
	res, err := g.Infer(context.Background(), row(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "small" || res.Class != 0 || res.Escalations != 0 {
		t.Fatalf("confident input: got served_by=%q class=%d esc=%d", res.ServedBy, res.Class, res.Escalations)
	}

	// Key 1: small is at 0.4 < 0.7 — the request escalates to large.
	res, err = g.Infer(context.Background(), row(1), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "large" || res.Class != 1 || res.Escalations != 1 {
		t.Fatalf("hard input: got served_by=%q class=%d esc=%d", res.ServedBy, res.Class, res.Escalations)
	}
	if fb.models["large"].calls != 1 {
		t.Fatalf("large ran %d times, want 1 (only the escalated request)", fb.models["large"].calls)
	}

	// Gate-hit-rate arithmetic: 3 easy + 1 hard so far-minus-the-two-above
	// — drive totals to 4 easy, 2 hard and check the counters exactly.
	for i := 0; i < 3; i++ {
		if _, err := g.Infer(context.Background(), row(0), ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Infer(context.Background(), row(1), ""); err != nil {
		t.Fatal(err)
	}
	var cas NodeStats
	for _, n := range g.Stats().Nodes {
		if n.Kind == KindCascade {
			cas = n
		}
	}
	if cas.Node != "casnode" {
		t.Fatalf("cascade node stats missing: %+v", g.Stats().Nodes)
	}
	if cas.Requests != 6 || cas.GateHits != 4 || cas.Escalations != 2 {
		t.Fatalf("cascade counters: requests=%d gate_hits=%d escalations=%d, want 6/4/2",
			cas.Requests, cas.GateHits, cas.Escalations)
	}
	if rate := float64(cas.GateHits) / float64(cas.Requests); math.Abs(rate-4.0/6.0) > 1e-12 {
		t.Fatalf("gate-hit rate %v, want 4/6", rate)
	}
}

func TestCascadeChildThresholdOverride(t *testing.T) {
	r := NewRegistry(newFake())
	// Child override 0.3: small's 0.4 clears it even though the node-level
	// threshold (0.95) would escalate.
	g := mustPut(t, r, &Spec{Name: "cas-override", Root: &NodeSpec{
		Kind: KindCascade, Threshold: 0.95,
		Children: []*NodeSpec{
			{Kind: KindModel, Model: "small", Threshold: 0.3},
			leaf("large"),
		},
	}})
	res, err := g.Infer(context.Background(), row(1), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "small" {
		t.Fatalf("served_by=%q, want small (child threshold 0.3 beats node 0.95)", res.ServedBy)
	}
}

func TestEnsembleAveraging(t *testing.T) {
	r := NewRegistry(newFake())
	g := mustPut(t, r, &Spec{Name: "ens", Root: &NodeSpec{
		Kind:     KindEnsemble,
		Children: []*NodeSpec{leaf("small"), leaf("large"), leaf("other")},
	}})
	res, err := g.Infer(context.Background(), row(0), "")
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed elementwise mean of the three canned vectors.
	want := []float64{(0.9 + 0.05 + 0.2) / 3, (0.05 + 0.9 + 0.2) / 3, (0.05 + 0.05 + 0.6) / 3}
	for i, w := range want {
		if math.Abs(res.Scores[i]-w) > 1e-12 {
			t.Fatalf("ensemble scores[%d] = %v, want %v", i, res.Scores[i], w)
		}
	}
	if res.Class != 0 {
		t.Fatalf("ensemble class %d, want 0 (0.3833 is the max mean)", res.Class)
	}
	parts := strings.Split(res.ServedBy, "+")
	sort.Strings(parts)
	if strings.Join(parts, "+") != "large+other+small" {
		t.Fatalf("served_by %q, want all three members", res.ServedBy)
	}
}

func TestEnsembleMixesLogitAndSoftmaxMembers(t *testing.T) {
	fb := newFake()
	// logit emits raw logits; its probability view must be softmaxed
	// before averaging with the probability-domain members.
	logits := []float64{2, 1, 0}
	fb.models["logit"] = &fakeModel{
		info: ModelInfo{Name: "logit", Version: 1, InputH: 2, InputW: 2, InputC: 1,
			OutputElems: 3, Softmax: false},
		answers: map[int][]float64{0: logits},
	}
	r := NewRegistry(fb)
	g := mustPut(t, r, &Spec{Name: "mix", Root: &NodeSpec{
		Kind:     KindEnsemble,
		Children: []*NodeSpec{leaf("small"), leaf("logit")},
	}})
	res, err := g.Infer(context.Background(), row(0), "")
	if err != nil {
		t.Fatal(err)
	}
	sm := Softmax(logits)
	for i := range sm {
		want := (sm[i] + []float64{0.9, 0.05, 0.05}[i]) / 2
		if math.Abs(res.Probs[i]-want) > 1e-12 {
			t.Fatalf("probs[%d] = %v, want %v (softmax applied to logit member)", i, res.Probs[i], want)
		}
	}
}

func TestSplitterDistribution(t *testing.T) {
	r := NewRegistry(newFake())
	g := mustPut(t, r, &Spec{Name: "split", Seed: 7, Root: &NodeSpec{
		Kind: KindSplitter,
		Children: []*NodeSpec{
			{Kind: KindModel, Model: "small", Name: "arm-small", Weight: 9},
			{Kind: KindModel, Model: "large", Name: "arm-large", Weight: 1},
		},
	}})
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := g.Infer(context.Background(), row(0), ""); err != nil {
			t.Fatal(err)
		}
	}
	picks := map[string]uint64{}
	var weights = map[string]float64{}
	for _, ns := range g.Stats().Nodes {
		if ns.Picks > 0 || ns.Weight > 0 {
			picks[ns.Node] = ns.Picks
			weights[ns.Node] = ns.Weight
		}
	}
	if math.Abs(weights["arm-small"]-0.9) > 1e-12 || math.Abs(weights["arm-large"]-0.1) > 1e-12 {
		t.Fatalf("normalized weights %v, want 0.9/0.1", weights)
	}
	if picks["arm-small"]+picks["arm-large"] != n {
		t.Fatalf("picks sum %d, want %d", picks["arm-small"]+picks["arm-large"], n)
	}
	// Seeded RNG: the split must land near 90/10. ±3σ for Binomial(2000,
	// 0.9) is ~±40; allow ±60 so the test is deterministic-seed-proof.
	got := float64(picks["arm-small"])
	if math.Abs(got-0.9*n) > 60 {
		t.Fatalf("arm-small picked %v of %d times, want ~%v", got, n, 0.9*n)
	}
}

func TestSplitterSeedReproducible(t *testing.T) {
	run := func() []uint64 {
		r := NewRegistry(newFake())
		g := mustPut(t, r, &Spec{Name: "split", Seed: 42, Root: &NodeSpec{
			Kind: KindSplitter,
			Children: []*NodeSpec{
				{Kind: KindModel, Model: "small", Weight: 1},
				{Kind: KindModel, Model: "large", Weight: 1},
			},
		}})
		for i := 0; i < 100; i++ {
			if _, err := g.Infer(context.Background(), row(0), ""); err != nil {
				t.Fatal(err)
			}
		}
		var out []uint64
		for _, ns := range g.Stats().Nodes {
			if ns.Kind == KindModel {
				out = append(out, ns.Picks)
			}
		}
		return out
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different pick sequences: %v vs %v", a, b)
	}
}

func TestSwitchRouting(t *testing.T) {
	r := NewRegistry(newFake())
	g := mustPut(t, r, &Spec{Name: "sw", Root: &NodeSpec{
		Kind: KindSwitch,
		Children: []*NodeSpec{
			{Kind: KindModel, Model: "large", When: "accurate"},
			{Kind: KindModel, Model: "small"}, // default arm
		},
	}})
	res, err := g.Infer(context.Background(), row(0), "accurate")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "large" {
		t.Fatalf("route=accurate served by %q, want large", res.ServedBy)
	}
	res, err = g.Infer(context.Background(), row(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "small" {
		t.Fatalf("default route served by %q, want small", res.ServedBy)
	}
	res, err = g.Infer(context.Background(), row(0), "no-such-arm")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "small" {
		t.Fatalf("unknown route served by %q, want the default arm", res.ServedBy)
	}
}

func TestSwitchWithoutDefaultRejectsUnknownRoute(t *testing.T) {
	r := NewRegistry(newFake())
	g := mustPut(t, r, &Spec{Name: "sw2", Root: &NodeSpec{
		Kind: KindSwitch,
		Children: []*NodeSpec{
			{Kind: KindModel, Model: "large", When: "accurate"},
		},
	}})
	_, err := g.Infer(context.Background(), row(0), "nope")
	var re *RouteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RouteError", err)
	}
}

func TestSequenceLastAnswerWins(t *testing.T) {
	fb := newFake()
	r := NewRegistry(fb)
	g := mustPut(t, r, &Spec{Name: "seq", Root: &NodeSpec{
		Kind:     KindSequence,
		Children: []*NodeSpec{leaf("small"), leaf("large")},
	}})
	res, err := g.Infer(context.Background(), row(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "large" || res.Class != 1 {
		t.Fatalf("sequence answered by %q class %d, want large/1", res.ServedBy, res.Class)
	}
	if fb.models["small"].calls != 1 {
		t.Fatalf("small ran %d times, want 1 (every step runs)", fb.models["small"].calls)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		code string
	}{
		{"dangling model", &Spec{Name: "g", Root: leaf("no-such-model")}, "unknown_model"},
		{"version mismatch", &Spec{Name: "g", Root: &NodeSpec{Kind: KindModel, Model: "other", Version: 2}}, "version_mismatch"},
		{"no root", &Spec{Name: "g"}, "invalid_graph"},
		{"no name", &Spec{Root: leaf("small")}, "invalid_graph"},
		{"bad name", &Spec{Name: "a b", Root: leaf("small")}, "invalid_graph"},
		{"unknown kind", &Spec{Name: "g", Root: &NodeSpec{Kind: "parliament", Children: []*NodeSpec{leaf("small")}}}, "invalid_graph"},
		{"childless cascade", &Spec{Name: "g", Root: &NodeSpec{Kind: KindCascade}}, "invalid_graph"},
		{"model with children", &Spec{Name: "g", Root: &NodeSpec{Kind: KindModel, Model: "small", Children: []*NodeSpec{leaf("large")}}}, "invalid_graph"},
		{"threshold out of range", &Spec{Name: "g", Root: &NodeSpec{Kind: KindCascade, Threshold: 1.5, Children: []*NodeSpec{leaf("small"), leaf("large")}}}, "invalid_graph"},
		{"negative weight", &Spec{Name: "g", Root: &NodeSpec{Kind: KindSplitter, Children: []*NodeSpec{{Kind: KindModel, Model: "small", Weight: -1}, leaf("large")}}}, "invalid_graph"},
		{"duplicate switch arm", &Spec{Name: "g", Root: &NodeSpec{Kind: KindSwitch, Children: []*NodeSpec{
			{Kind: KindModel, Model: "small", When: "x"}, {Kind: KindModel, Model: "large", When: "x"}}}}, "invalid_graph"},
		{"two default arms", &Spec{Name: "g", Root: &NodeSpec{Kind: KindSwitch, Children: []*NodeSpec{
			leaf("small"), leaf("large")}}}, "invalid_graph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry(newFake())
			_, err := r.Put(tc.spec)
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("err = %v, want ValidationError", err)
			}
			if ve.Code != tc.code {
				t.Fatalf("code = %q, want %q (%v)", ve.Code, tc.code, err)
			}
		})
	}
}

func TestValidationRejectsMixedInputLayouts(t *testing.T) {
	fb := newFake()
	fb.models["wide"] = &fakeModel{
		info: ModelInfo{Name: "wide", Version: 1, InputH: 8, InputW: 8, InputC: 3,
			OutputElems: 3, Softmax: true},
		answers: map[int][]float64{0: {1, 0, 0}},
	}
	r := NewRegistry(fb)
	_, err := r.Put(&Spec{Name: "g", Root: &NodeSpec{
		Kind: KindEnsemble, Children: []*NodeSpec{leaf("small"), leaf("wide")},
	}})
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Code != "invalid_graph" {
		t.Fatalf("err = %v, want invalid_graph (input layout mismatch)", err)
	}
}

func TestVersionPinStaleAtInfer(t *testing.T) {
	fb := newFake()
	r := NewRegistry(fb)
	g := mustPut(t, r, &Spec{Name: "pin", Root: &NodeSpec{Kind: KindModel, Model: "small", Version: 1}})
	// The backend swaps small to version 2 after registration.
	fb.models["small"].info.Version = 2
	_, err := g.Infer(context.Background(), row(0), "")
	var sv *StaleVersionError
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want StaleVersionError", err)
	}
	if sv.Want != 1 || sv.Got != 2 {
		t.Fatalf("stale version want=%d got=%d, expected 1/2", sv.Want, sv.Got)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(newFake())
	mustPut(t, r, &Spec{Name: "a", Root: leaf("small")})
	mustPut(t, r, &Spec{Name: "b", Root: &NodeSpec{
		Kind: KindCascade, Threshold: 0.5,
		Children: []*NodeSpec{leaf("small"), leaf("large")},
	}})

	if got := r.Referenced("small"); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("Referenced(small) = %v, want [a b]", got)
	}
	if got := r.Referenced("large"); fmt.Sprint(got) != "[b]" {
		t.Fatalf("Referenced(large) = %v, want [b]", got)
	}
	if got := r.Referenced("other"); len(got) != 0 {
		t.Fatalf("Referenced(other) = %v, want empty", got)
	}

	// Re-registration bumps the revision and resets counters.
	if _, err := r.Infer(context.Background(), "a", row(0), ""); err != nil {
		t.Fatal(err)
	}
	g := mustPut(t, r, &Spec{Name: "a", Root: leaf("large")})
	if g.Revision() != 2 {
		t.Fatalf("revision %d after re-register, want 2", g.Revision())
	}
	if g.Stats().Requests != 0 {
		t.Fatalf("requests %d after re-register, want 0 (fresh counters)", g.Stats().Requests)
	}

	if err := r.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if got := r.Referenced("large"); fmt.Sprint(got) != "[a]" {
		t.Fatalf("Referenced(large) after delete = %v, want [a]", got)
	}
	if err := r.Delete("b"); err == nil {
		t.Fatal("second delete succeeded, want NotFoundError")
	}
	var nf *NotFoundError
	if _, err := r.Infer(context.Background(), "b", row(0), ""); !errors.As(err, &nf) {
		t.Fatalf("infer on deleted graph: %v, want NotFoundError", err)
	}

	names := make([]string, 0)
	for _, g := range r.List() {
		names = append(names, g.Spec().Name)
	}
	if fmt.Sprint(names) != "[a]" {
		t.Fatalf("List = %v, want [a]", names)
	}
}

func TestNestedGraph(t *testing.T) {
	// A cascade whose final stage is an ensemble: composite nodes nest.
	r := NewRegistry(newFake())
	g := mustPut(t, r, &Spec{Name: "nested", Root: &NodeSpec{
		Kind: KindCascade, Threshold: 0.99,
		Children: []*NodeSpec{
			leaf("small"),
			{Kind: KindEnsemble, Children: []*NodeSpec{leaf("large"), leaf("other")}},
		},
	}})
	res, err := g.Infer(context.Background(), row(1), "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalations != 1 {
		t.Fatalf("escalations %d, want 1 (0.4 < 0.99)", res.Escalations)
	}
	if !strings.Contains(res.ServedBy, "+") {
		t.Fatalf("served_by %q, want the ensemble", res.ServedBy)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 1000}) // stability: no NaN/Inf
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("softmax of equal logits = %v, want uniform", p)
		}
	}
	if Softmax(nil) != nil {
		t.Fatal("softmax(nil) should be nil")
	}
}
