package servegraph

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"micronets/internal/obs"
)

// ModelInfo is what the router needs to know about a loaded model to
// validate a graph against the repository index.
type ModelInfo struct {
	Name    string
	Version int
	Task    string
	// InputH/W/C is the model's input layout; every leaf of one graph
	// must agree on it (a graph has a single fan-in).
	InputH, InputW, InputC int
	// OutputElems is the score-vector length (ensemble arms must match).
	OutputElems int
	// Softmax reports whether the model was lowered with the classifier
	// softmax appended, i.e. whether its outputs are already probabilities.
	Softmax bool
}

// Scored is one model answer in the float domain.
type Scored struct {
	Model   string
	Version int
	// Scores are the dequantized outputs (probabilities when the model
	// appends softmax, logits otherwise).
	Scores []float64
	// Probs are the probability-domain scores: Scores when the model
	// appends softmax, softmax(Scores) otherwise. Cascade confidence and
	// ensemble averaging operate here.
	Probs []float64
}

// Backend is the model-serving surface the router routes over.
// serve.Repository satisfies it through an adapter; tests use fakes.
type Backend interface {
	// ModelInfo resolves a model that currently has a serving version.
	ModelInfo(name string) (ModelInfo, error)
	// Infer runs one float input row through the serving version.
	Infer(ctx context.Context, model string, x []float64) (Scored, error)
}

// Result is one answer routed through a graph.
type Result struct {
	// Scores is the answer vector (the answering node's dequantized
	// scores; for an ensemble, the averaged probabilities).
	Scores []float64
	// Probs is the probability-domain view of Scores.
	Probs []float64
	// Class is argmax(Probs); Confidence is Probs[Class].
	Class      int
	Confidence float64
	// ServedBy is the leaf model that produced the answer ("a+b" for an
	// ensemble).
	ServedBy string
	// Escalations counts cascade stages that declined this request.
	Escalations int
}

// cnode is one compiled graph node with its live counters.
type cnode struct {
	kind      string
	label     string
	model     string
	version   int
	threshold float64
	weight    float64 // normalized splitter share
	when      string
	hasWhen   bool // distinguishes the default arm from no arm
	children  []*cnode

	requests atomic.Uint64
	errors   atomic.Uint64
	// gateHits / escalations are cascade counters: answers produced by a
	// non-final stage vs requests passed on to the next stage.
	gateHits    atomic.Uint64
	escalations atomic.Uint64
	// picks counts how often a splitter chose this arm.
	picks atomic.Uint64
}

// Graph is one registered, compiled inference graph.
type Graph struct {
	spec     Spec
	revision int
	root     *cnode
	backend  Backend

	// Input layout shared by every leaf, for HTTP shape validation.
	InputH, InputW, InputC int
	// OutputElems is the root's answer-vector length.
	OutputElems int

	models []string // referenced model names, sorted

	rngMu sync.Mutex
	rng   *rand.Rand

	requests atomic.Uint64
	errors   atomic.Uint64
	lat      obs.Histogram
}

// Spec returns a copy of the registered spec.
func (g *Graph) Spec() Spec { return g.spec }

// Revision returns how many times this name has been (re)registered.
func (g *Graph) Revision() int { return g.revision }

// Models returns the model names the graph references, sorted.
func (g *Graph) Models() []string { return append([]string(nil), g.models...) }

// compile validates a spec against the backend's current index and builds
// the executable node tree.
func compile(spec *Spec, backend Backend, revision int) (*Graph, error) {
	if spec == nil || spec.Name == "" {
		return nil, &ValidationError{Graph: "", Code: "invalid_graph", Detail: "graph needs a name"}
	}
	if !nameRE.MatchString(spec.Name) {
		return nil, &ValidationError{Graph: spec.Name, Code: "invalid_graph",
			Detail: fmt.Sprintf("name %q is not a valid path segment", spec.Name)}
	}
	if spec.Root == nil {
		return nil, &ValidationError{Graph: spec.Name, Code: "invalid_graph", Detail: "graph needs a root node"}
	}
	g := &Graph{spec: *spec, revision: revision, backend: backend}
	c := &compiler{graph: spec.Name, backend: backend, infos: map[string]ModelInfo{}}
	root, err := c.compileNode(spec.Root, "root", 0)
	if err != nil {
		return nil, err
	}
	g.root = root
	g.OutputElems = c.outElems(root)
	for name := range c.infos {
		g.models = append(g.models, name)
	}
	sort.Strings(g.models)
	// Every leaf was checked against the first-seen input layout, so any
	// referenced model's layout is THE graph layout.
	first := c.infos[c.firstLeaf]
	g.InputH, g.InputW, g.InputC = first.InputH, first.InputW, first.InputC
	seed := spec.Seed
	if seed == 0 {
		for _, r := range spec.Name {
			seed = seed*131 + int64(r)
		}
	}
	g.rng = rand.New(rand.NewSource(seed))
	return g, nil
}

// compiler carries the per-compile validation state.
type compiler struct {
	graph     string
	backend   Backend
	infos     map[string]ModelInfo
	firstLeaf string
	nodes     int
}

func (c *compiler) errf(node, code, model, format string, args ...any) error {
	return &ValidationError{Graph: c.graph, Node: node, Code: code, Model: model,
		Detail: fmt.Sprintf(format, args...)}
}

func (c *compiler) compileNode(spec *NodeSpec, path string, depth int) (*cnode, error) {
	if spec == nil {
		return nil, c.errf(path, "invalid_graph", "", "node is null")
	}
	if depth > maxDepth {
		return nil, c.errf(path, "invalid_graph", "", "graph deeper than %d levels", maxDepth)
	}
	if c.nodes++; c.nodes > maxNodes {
		return nil, c.errf(path, "invalid_graph", "", "graph has more than %d nodes", maxNodes)
	}
	label := spec.Name
	if label == "" {
		label = path
	}
	n := &cnode{kind: spec.Kind, label: label, threshold: spec.Threshold,
		when: spec.When, hasWhen: spec.When != ""}
	if spec.Threshold < 0 || spec.Threshold > 1 {
		return nil, c.errf(path, "invalid_graph", "", "threshold %v outside [0,1]", spec.Threshold)
	}

	if spec.Kind == KindModel {
		if len(spec.Children) > 0 {
			return nil, c.errf(path, "invalid_graph", spec.Model, "model leaf cannot have children")
		}
		if spec.Model == "" {
			return nil, c.errf(path, "invalid_graph", "", "model leaf needs a model name")
		}
		info, err := c.backend.ModelInfo(spec.Model)
		if err != nil {
			return nil, c.errf(path, "unknown_model", spec.Model, "model %q has no serving version: %v", spec.Model, err)
		}
		if spec.Version != 0 && spec.Version != info.Version {
			return nil, c.errf(path, "version_mismatch", spec.Model,
				"model %q pins version %d but version %d is serving", spec.Model, spec.Version, info.Version)
		}
		if c.firstLeaf == "" {
			c.firstLeaf = spec.Model
		} else {
			first := c.infos[c.firstLeaf]
			if first.InputH != info.InputH || first.InputW != info.InputW || first.InputC != info.InputC {
				return nil, c.errf(path, "invalid_graph", spec.Model,
					"model %q input [%d %d %d] differs from %q input [%d %d %d]; one graph has one input layout",
					spec.Model, info.InputH, info.InputW, info.InputC,
					c.firstLeaf, first.InputH, first.InputW, first.InputC)
			}
		}
		c.infos[spec.Model] = info
		n.model, n.version = spec.Model, spec.Version
		return n, nil
	}

	switch spec.Kind {
	case KindSequence, KindSwitch, KindEnsemble, KindSplitter, KindCascade:
	default:
		return nil, c.errf(path, "invalid_graph", "", "unknown node kind %q", spec.Kind)
	}
	if len(spec.Children) == 0 {
		return nil, c.errf(path, "invalid_graph", "", "%s node needs at least one child", spec.Kind)
	}
	if spec.Model != "" {
		return nil, c.errf(path, "invalid_graph", spec.Model, "%s node cannot name a model; use a model leaf child", spec.Kind)
	}
	var totalWeight float64
	seenWhen := map[string]bool{}
	for i, cs := range spec.Children {
		child, err := c.compileNode(cs, fmt.Sprintf("%s.%d", path, i), depth+1)
		if err != nil {
			return nil, err
		}
		switch spec.Kind {
		case KindSplitter:
			if cs.Weight < 0 {
				return nil, c.errf(child.label, "invalid_graph", "", "splitter weight %v is negative", cs.Weight)
			}
			if cs.Weight == 0 {
				child.weight = 1
			} else {
				child.weight = cs.Weight
			}
			totalWeight += child.weight
		case KindSwitch:
			if seenWhen[cs.When] {
				if cs.When == "" {
					return nil, c.errf(path, "invalid_graph", "", "switch has more than one default arm")
				}
				return nil, c.errf(path, "invalid_graph", "", "switch has duplicate arm %q", cs.When)
			}
			seenWhen[cs.When] = true
			child.when, child.hasWhen = cs.When, cs.When != ""
		}
		n.children = append(n.children, child)
	}
	if spec.Kind == KindSplitter {
		for _, child := range n.children {
			child.weight /= totalWeight
		}
	}
	// Nodes that can answer from any child need the answer shapes to
	// agree; a sequence only ever answers from its last child.
	if spec.Kind != KindSequence {
		want := c.outElems(n.children[0])
		for i, child := range n.children[1:] {
			if got := c.outElems(child); got != want {
				return nil, c.errf(path, "invalid_graph", "",
					"%s children disagree on output length (child 0 has %d, child %d has %d)",
					spec.Kind, want, i+1, got)
			}
		}
	}
	return n, nil
}

// outElems is the answer-vector length a subtree produces.
func (c *compiler) outElems(n *cnode) int {
	if n.kind == KindModel {
		return c.infos[n.model].OutputElems
	}
	return c.outElems(n.children[len(n.children)-1])
}

// Infer routes one float input row through the graph. route selects the
// arm at switch nodes (the request's "route" parameter).
func (g *Graph) Infer(ctx context.Context, x []float64, route string) (*Result, error) {
	start := time.Now()
	g.requests.Add(1)
	res, err := g.eval(ctx, g.root, x, route)
	if err != nil {
		g.errors.Add(1)
		return nil, err
	}
	g.lat.Observe(time.Since(start))
	return res, nil
}

func (g *Graph) eval(ctx context.Context, n *cnode, x []float64, route string) (*Result, error) {
	n.requests.Add(1)
	// A traced request gets one child span per visited node, so a
	// cascade escalation shows up as sibling stage spans with their own
	// durations.
	if tr := obs.TraceFrom(ctx); tr != nil {
		span := tr.Start(g.spec.Name+"/"+n.label, obs.SpanFrom(ctx))
		span.SetAttr("kind", n.kind)
		if n.model != "" {
			span.SetAttr("model", n.model)
		}
		ctx = obs.ContextWithSpan(ctx, span)
		defer span.End()
	}
	res, err := g.evalKind(ctx, n, x, route)
	if err != nil {
		n.errors.Add(1)
	}
	return res, err
}

func (g *Graph) evalKind(ctx context.Context, n *cnode, x []float64, route string) (*Result, error) {
	switch n.kind {
	case KindModel:
		s, err := g.backend.Infer(ctx, n.model, x)
		if err != nil {
			return nil, err
		}
		if n.version != 0 && s.Version != n.version {
			return nil, &StaleVersionError{Graph: g.spec.Name, Model: n.model, Want: n.version, Got: s.Version}
		}
		return resultFrom(s.Scores, s.Probs, n.model), nil

	case KindSequence:
		// Every step sees the original input; the last answer wins.
		var last *Result
		for _, child := range n.children {
			res, err := g.eval(ctx, child, x, route)
			if err != nil {
				return nil, err
			}
			last = res
		}
		return last, nil

	case KindSwitch:
		var deflt *cnode
		for _, child := range n.children {
			if child.hasWhen && child.when == route {
				return g.eval(ctx, child, x, route)
			}
			if !child.hasWhen {
				deflt = child
			}
		}
		if deflt != nil {
			return g.eval(ctx, deflt, x, route)
		}
		return nil, &RouteError{Graph: g.spec.Name, Node: n.label, Route: route}

	case KindEnsemble:
		results := make([]*Result, len(n.children))
		errs := make([]error, len(n.children))
		var wg sync.WaitGroup
		for i, child := range n.children {
			wg.Add(1)
			go func(i int, child *cnode) {
				defer wg.Done()
				results[i], errs[i] = g.eval(ctx, child, x, route)
			}(i, child)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Average in the probability domain so softmaxed and raw-logit
		// members mix on one scale.
		avg := make([]float64, len(results[0].Probs))
		names := make([]string, len(results))
		for i, r := range results {
			for j, p := range r.Probs {
				avg[j] += p
			}
			names[i] = r.ServedBy
		}
		for j := range avg {
			avg[j] /= float64(len(results))
		}
		out := resultFrom(avg, avg, "")
		out.ServedBy = joinNames(names)
		return out, nil

	case KindSplitter:
		g.rngMu.Lock()
		pick := g.rng.Float64()
		g.rngMu.Unlock()
		chosen := n.children[len(n.children)-1]
		for _, child := range n.children {
			if pick < child.weight {
				chosen = child
				break
			}
			pick -= child.weight
		}
		chosen.picks.Add(1)
		return g.eval(ctx, chosen, x, route)

	case KindCascade:
		escalated := 0
		for i, child := range n.children {
			res, err := g.eval(ctx, child, x, route)
			if err != nil {
				return nil, err
			}
			threshold := n.threshold
			if child.threshold > 0 {
				threshold = child.threshold
			}
			last := i == len(n.children)-1
			if last || res.Confidence >= threshold {
				if !last {
					n.gateHits.Add(1)
				}
				res.Escalations += escalated
				return res, nil
			}
			n.escalations.Add(1)
			escalated++
		}
		panic("servegraph: cascade with no children survived validation")
	}
	panic(fmt.Sprintf("servegraph: unknown compiled kind %q", n.kind))
}

// resultFrom builds a Result around a score vector and its probability
// view, computing argmax class and confidence.
func resultFrom(scores, probs []float64, servedBy string) *Result {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	conf := 0.0
	if len(probs) > 0 {
		conf = probs[best]
	}
	return &Result{Scores: scores, Probs: probs, Class: best, Confidence: conf, ServedBy: servedBy}
}

func joinNames(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

// Softmax converts a logit vector to probabilities (numerically stable).
// Exported for backends whose models do not append a softmax op.
func Softmax(logits []float64) []float64 {
	if len(logits) == 0 {
		return nil
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
