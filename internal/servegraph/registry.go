package servegraph

import (
	"context"
	"sort"
	"sync"

	"micronets/internal/obs"
)

// Registry holds the registered graphs of one server. All methods are
// safe for concurrent use; Infer runs lock-free against a snapshot of the
// graph, so a concurrent re-registration never fails in-flight requests.
type Registry struct {
	backend Backend
	mu      sync.RWMutex
	graphs  map[string]*Graph
	revs    map[string]int
}

// NewRegistry returns an empty registry routing over backend.
func NewRegistry(backend Backend) *Registry {
	return &Registry{backend: backend, graphs: make(map[string]*Graph), revs: make(map[string]int)}
}

// Put validates spec against the backend's current index, compiles it,
// and installs it under spec.Name — replacing any previous registration
// (whose in-flight requests finish against the old compiled tree).
// Counters start fresh on every registration.
func (r *Registry) Put(spec *Spec) (*Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := ""
	if spec != nil {
		name = spec.Name
	}
	g, err := compile(spec, r.backend, r.revs[name]+1)
	if err != nil {
		return nil, err
	}
	r.revs[name]++
	r.graphs[name] = g
	return g, nil
}

// Get returns the registered graph for a name.
func (r *Registry) Get(name string) (*Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g, ok := r.graphs[name]; ok {
		return g, nil
	}
	return nil, &NotFoundError{Graph: name}
}

// Delete removes a graph, releasing its model references.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; !ok {
		return &NotFoundError{Graph: name}
	}
	delete(r.graphs, name)
	return nil
}

// List returns the registered graphs sorted by name.
func (r *Registry) List() []*Graph {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Graph, 0, len(r.graphs))
	for _, g := range r.graphs {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// Referenced returns the names of graphs referencing a model, sorted —
// the repository's unload guard consults it so a model serving a graph
// cannot be dropped out from under it.
func (r *Registry) Referenced(model string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, g := range r.graphs {
		for _, m := range g.models {
			if m == model {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Infer routes one request through a named graph.
func (r *Registry) Infer(ctx context.Context, name string, x []float64, route string) (*Result, error) {
	g, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return g.Infer(ctx, x, route)
}

// NodeStats is a point-in-time snapshot of one node's counters.
type NodeStats struct {
	// Node is the metrics label (NodeSpec.Name or the path, e.g. "root.1").
	Node string `json:"node"`
	Kind string `json:"kind"`
	// Model is set on model leaves.
	Model    string `json:"model,omitempty"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors,omitempty"`
	// GateHits and Escalations are cascade counters: answers produced by
	// a non-final stage vs requests passed to the next stage.
	GateHits    uint64 `json:"gate_hits,omitempty"`
	Escalations uint64 `json:"escalations,omitempty"`
	// Picks and Weight describe a splitter arm: how often it was chosen
	// and its normalized traffic share.
	Picks  uint64  `json:"picks,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// GraphStats is a point-in-time snapshot of one graph's counters — the
// payload of GET /v2/graphs/{name} and the source of /metrics families.
type GraphStats struct {
	Name      string `json:"name"`
	Revision  int    `json:"revision"`
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	LatencyNs uint64 `json:"latency_ns_sum"`
	LatencyN  uint64 `json:"latency_count"`
	// P50/P95/P99 come from the graph's latency histogram; Latency is
	// the full snapshot behind them, rendered on /metrics.
	P50Ms       float64      `json:"p50_ms"`
	P95Ms       float64      `json:"p95_ms"`
	P99Ms       float64      `json:"p99_ms"`
	Latency     obs.Snapshot `json:"-"`
	Models      []string     `json:"models"`
	Nodes       []NodeStats  `json:"nodes"`
	InputShape  []int        `json:"input_shape"`
	OutputElems int          `json:"output_elems"`
}

// Stats snapshots one graph's counters.
func (g *Graph) Stats() GraphStats {
	lat := g.lat.Snapshot()
	st := GraphStats{
		Name:        g.spec.Name,
		Revision:    g.revision,
		Requests:    g.requests.Load(),
		Errors:      g.errors.Load(),
		LatencyNs:   uint64(lat.SumNs),
		LatencyN:    lat.Count,
		P50Ms:       lat.P50().Seconds() * 1e3,
		P95Ms:       lat.P95().Seconds() * 1e3,
		P99Ms:       lat.P99().Seconds() * 1e3,
		Latency:     lat,
		Models:      g.Models(),
		InputShape:  []int{g.InputH, g.InputW, g.InputC},
		OutputElems: g.OutputElems,
	}
	var walk func(n *cnode)
	walk = func(n *cnode) {
		ns := NodeStats{
			Node:        n.label,
			Kind:        n.kind,
			Model:       n.model,
			Requests:    n.requests.Load(),
			Errors:      n.errors.Load(),
			GateHits:    n.gateHits.Load(),
			Escalations: n.escalations.Load(),
			Picks:       n.picks.Load(),
			Weight:      n.weight,
		}
		st.Nodes = append(st.Nodes, ns)
		for _, child := range n.children {
			walk(child)
		}
	}
	walk(g.root)
	return st
}

// Snapshot returns the stats of every registered graph, sorted by name.
func (r *Registry) Snapshot() []GraphStats {
	gs := r.List()
	out := make([]GraphStats, len(gs))
	for i, g := range gs {
		out[i] = g.Stats()
	}
	return out
}
