// Package servegraph is the in-process inference-graph router: declarative
// graphs of loaded model versions, in the spirit of KServe's
// InferenceGraph, executed without any network hop between nodes.
//
// A graph is a named tree of nodes (Spec / NodeSpec, plain JSON):
//
//   - model    — leaf; runs one loaded model version
//   - sequence — children evaluated in order on the original input; the
//     last child's answer wins
//   - switch   — routes to the child whose "when" matches the request's
//     route parameter (an empty "when" is the default arm)
//   - ensemble — children evaluated concurrently; their probability
//     vectors are averaged elementwise
//   - splitter — weighted traffic split: each request is routed to one
//     child drawn from the normalized weights (seeded RNG, per-arm
//     metrics) — percentage-based canary rollout between versions
//   - cascade  — early-exit chain: each stage answers if its top softmax
//     confidence clears the threshold, otherwise the request escalates to
//     the next (larger) stage; the last stage always answers
//
// The cascade is the serving-side continuation of the paper's MCU-budget
// argument: a tiny gate model spends the minimum cycles/energy on the
// easy majority of traffic and escalates only the hard tail, so the
// blended cost per inference approaches the gate's, not the frontier
// model's. Gate-hit rate, escalations, and per-arm counts are tracked per
// node for /metrics.
//
// The package is deliberately backend-agnostic: it routes over the small
// Backend interface (resolve a model, run one float row) and knows
// nothing about HTTP or the repository. internal/serve adapts
// serve.Repository to Backend, mounts the /v2/graphs endpoints, and
// guards Unload so a model referenced by a registered graph cannot be
// dropped out from under it.
package servegraph
