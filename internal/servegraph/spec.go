package servegraph

import (
	"fmt"
	"regexp"
)

// Node kinds accepted in a NodeSpec.
const (
	KindModel    = "model"
	KindSequence = "sequence"
	KindSwitch   = "switch"
	KindEnsemble = "ensemble"
	KindSplitter = "splitter"
	KindCascade  = "cascade"
)

// Spec is the declarative JSON form of one inference graph — the body of
// PUT /v2/graphs/{name}.
type Spec struct {
	// Name is the graph's serving name (URL path segment).
	Name string `json:"name"`
	// Description is free-form documentation carried with the graph.
	Description string `json:"description,omitempty"`
	// Seed seeds the splitter RNG so weighted splits are reproducible in
	// tests (0 derives a seed from the graph name).
	Seed int64 `json:"seed,omitempty"`
	// Root is the graph's entry node.
	Root *NodeSpec `json:"root"`
}

// NodeSpec is one node of the graph tree. Kind selects which of the other
// fields apply; unused fields must be left zero.
type NodeSpec struct {
	// Kind is one of model, sequence, switch, ensemble, splitter, cascade.
	Kind string `json:"kind"`
	// Name optionally overrides the node's metrics label (default: its
	// path, e.g. "root.1").
	Name string `json:"name,omitempty"`

	// Model names the loaded repository model this leaf runs (kind model).
	Model string `json:"model,omitempty"`
	// Version optionally pins the leaf to a specific serving version;
	// 0 means "whatever is READY". A pinned version is validated at
	// registration and re-checked on every infer.
	Version int `json:"version,omitempty"`

	// Threshold is the cascade early-exit confidence in [0,1]: a stage
	// answers when its top softmax probability is >= Threshold. On a
	// cascade node it applies to every non-final stage; set on a child it
	// overrides the node-level value for that stage alone.
	Threshold float64 `json:"threshold,omitempty"`

	// Weight is this child's share of a splitter parent's traffic
	// (relative, normalized at registration; unset means 1).
	Weight float64 `json:"weight,omitempty"`

	// When is the route key this child of a switch parent matches; the
	// request selects an arm via its "route" parameter. Empty marks the
	// default arm.
	When string `json:"when,omitempty"`

	// Children are the sub-nodes (every kind except model).
	Children []*NodeSpec `json:"children,omitempty"`
}

// Validation limits: a graph is a routing plan, not a program.
const (
	maxNodes = 64
	maxDepth = 8
)

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ValidationError rejects a Put whose spec cannot be compiled against the
// current repository index. The HTTP layer renders it as a structured
// 4xx: Code is machine-readable ("unknown_model", "version_mismatch",
// "invalid_graph"), Node is the offending node's path, Model the model
// reference involved (when any).
type ValidationError struct {
	Graph  string
	Node   string
	Code   string
	Model  string
	Detail string
}

func (e *ValidationError) Error() string {
	msg := fmt.Sprintf("servegraph: graph %q", e.Graph)
	if e.Node != "" {
		msg += " node " + e.Node
	}
	return msg + ": " + e.Detail
}

// NotFoundError reports an operation on an unregistered graph (HTTP 404).
type NotFoundError struct{ Graph string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("servegraph: graph %q not registered", e.Graph)
}

// StaleVersionError fails an infer through a leaf whose pinned model
// version is no longer the serving one (HTTP 409: re-register the graph
// against the new index).
type StaleVersionError struct {
	Graph, Model string
	Want, Got    int
}

func (e *StaleVersionError) Error() string {
	return fmt.Sprintf("servegraph: graph %q pins %s version %d but version %d is serving",
		e.Graph, e.Model, e.Want, e.Got)
}

// RouteError fails an infer whose switch node has no arm for the
// request's route parameter (HTTP 400).
type RouteError struct {
	Graph, Node, Route string
}

func (e *RouteError) Error() string {
	if e.Route == "" {
		return fmt.Sprintf("servegraph: graph %q node %s: no route parameter and no default arm", e.Graph, e.Node)
	}
	return fmt.Sprintf("servegraph: graph %q node %s: no arm matches route %q and no default arm", e.Graph, e.Node, e.Route)
}
