// Serving example: boot the in-process inference server under a
// device-class RAM budget, hit the KServe-v2 endpoints like an external
// client, then drive the model-repository control plane — hot-load a
// model with zero restarts, read the budget-planned capacity from the
// index, and watch an over-budget load get a structured 409.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"time"

	"micronets"
)

const model = "MicroNet-KWS-S"

func main() {
	log.SetFlags(0)
	// Quiet the per-request log so the example output stays readable.
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := "127.0.0.1:18151"
	done := make(chan error, 1)
	go func() {
		done <- micronets.Serve(ctx, micronets.ServeOptions{
			Addr:   addr,
			Models: []string{model},
			// Emulate the large MCU: every load is planned against 512 KB
			// of arena RAM, so pool sizes and batch bounds come from
			// tflm.PlanMemoryBatch instead of fixed counts.
			RAMBudgetBytes: 512 * 1024,
			PoolSize:       2,
			Logger:         logger,
			Deploy:         micronets.DeployOptions{Seed: 42, AppendSoftmax: true},
		})
	}()

	base := "http://" + addr
	waitReady(base)

	var meta struct {
		Inputs []struct {
			Shape []int `json:"shape"`
		} `json:"inputs"`
	}
	getJSON(base+"/v2/models/"+model, &meta)
	shape := meta.Inputs[0].Shape
	elems := shape[0] * shape[1] * shape[2]
	fmt.Printf("model %s ready, input shape %v\n", model, shape)

	// A synthetic "spectrogram": any FP32 payload of the right length.
	data := make([]float64, elems)
	for i := range data {
		data[i] = float64(i%7)/7.0 - 0.5
	}
	body, _ := json.Marshal(map[string]any{
		"inputs": []map[string]any{{
			"name": "input", "datatype": "FP32", "shape": shape, "data": data,
		}},
	})
	resp, err := http.Post(base+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Outputs []struct {
			Name string    `json:"name"`
			Data []float64 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	for _, o := range out.Outputs {
		switch o.Name {
		case "class":
			fmt.Printf("argmax class: %d\n", int(o.Data[0]))
		case "score":
			fmt.Printf("top score:    %.4f\n", o.Data[0])
		}
	}

	// ---- the control plane: hot lifecycle management, no restarts ----

	// DSCNN-S was not in the boot set; one admin POST makes it servable.
	code, status := postJSON(base+"/v2/repository/models/DSCNN-S/load", nil)
	fmt.Printf("hot-load DSCNN-S: HTTP %d, state %v, pool %v, max batch %v\n",
		code, status["state"], status["pool_size"], status["max_batch"])

	// The index shows every version with its budget-planned capacity.
	var index struct {
		Models []struct {
			Name            string `json:"name"`
			Version         int    `json:"version"`
			State           string `json:"state"`
			PoolSize        int    `json:"pool_size"`
			MaxBatch        int    `json:"max_batch"`
			PlannedRAMBytes int    `json:"planned_ram_bytes"`
		} `json:"models"`
		BudgetBytes  int `json:"ram_budget_bytes"`
		PlannedBytes int `json:"ram_planned_bytes"`
	}
	getJSON(base+"/v2/repository/index", &index)
	fmt.Printf("repository: %d/%d budget bytes planned\n", index.PlannedBytes, index.BudgetBytes)
	for _, m := range index.Models {
		fmt.Printf("  %-16s v%d %-7s pool=%d batch=%d ram=%dB\n",
			m.Name, m.Version, m.State, m.PoolSize, m.MaxBatch, m.PlannedRAMBytes)
	}

	// MicroNet-AD-L needs a ~345 KB arena even at batch 1 — more than the
	// budget has left. The repository answers with a structured 409
	// instead of OOMing.
	code, conflict := postJSON(base+"/v2/repository/models/MicroNet-AD-L/load", nil)
	fmt.Printf("over-budget load: HTTP %d code=%v needed=%v budget=%v planned=%v\n",
		code, conflict["code"], conflict["needed_bytes"], conflict["budget_bytes"], conflict["planned_bytes"])

	// ---- inference graphs: a two-stage cascade over the loaded models ----

	// DSCNN-S (7 MOps) gates for MicroNet-KWS-S: a stage answers when its
	// top softmax probability clears the threshold, otherwise the request
	// escalates to the next stage. (Synthetic weights give a near-uniform
	// 12-class head, so the demo threshold sits just inside the gate's
	// 0.11-0.12 confidence band to show both outcomes; real traffic would
	// run 0.6-0.9.)
	spec := map[string]any{
		"description": "gate answers confident traffic, escalate the rest",
		"root": map[string]any{
			"kind": "cascade", "threshold": 0.115,
			"children": []map[string]any{
				{"kind": "model", "model": "DSCNN-S"},
				{"kind": "model", "model": model},
			},
		},
	}
	specBody, _ := json.Marshal(spec)
	code, reg := putJSON(base+"/v2/graphs/demo-cascade", specBody)
	fmt.Printf("register cascade: HTTP %d revision=%v models=%v\n", code, reg["revision"], reg["models"])

	// Route a few requests through the graph; served_by says which stage
	// answered each row, escalations how many stages it climbed.
	var graphOut struct {
		ServedBy    []string `json:"served_by"`
		Escalations []int    `json:"escalations"`
	}
	for i := 0; i < 4; i++ {
		for j := range data {
			data[j] = float64((i*31+j)%11)/11.0 - 0.5
		}
		body, _ = json.Marshal(map[string]any{
			"inputs": []map[string]any{{
				"name": "input", "datatype": "FP32", "shape": shape, "data": data,
			}},
		})
		resp, err := http.Post(base+"/v2/graphs/demo-cascade/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&graphOut); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  request %d: served by %-16s escalations=%d\n", i, graphOut.ServedBy[0], graphOut.Escalations[0])
	}

	// The graph's own counters expose the gate-hit rate.
	var gstats struct {
		Stats struct {
			Requests uint64 `json:"requests"`
			Nodes    []struct {
				Kind        string `json:"kind"`
				GateHits    uint64 `json:"gate_hits"`
				Escalations uint64 `json:"escalations"`
			} `json:"nodes"`
		} `json:"stats"`
	}
	getJSON(base+"/v2/graphs/demo-cascade", &gstats)
	for _, n := range gstats.Stats.Nodes {
		if n.Kind == "cascade" {
			fmt.Printf("cascade stats: %d requests, %d gate hits, %d escalations\n",
				gstats.Stats.Requests, n.GateHits, n.Escalations)
		}
	}

	// A referenced model cannot be unloaded out from under the graph.
	code, blocked := postJSON(base+"/v2/repository/models/DSCNN-S/unload", nil)
	fmt.Printf("unload gated model: HTTP %d code=%v graphs=%v\n", code, blocked["code"], blocked["graphs"])

	cancel() // SIGTERM-equivalent: drain and exit
	if err := <-done; err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("server drained cleanly")
}

func waitReady(base string) {
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/v2/health/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("server never became ready")
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body []byte) (int, map[string]any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, out
}

func putJSON(url string, body []byte) (int, map[string]any) {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, out
}
