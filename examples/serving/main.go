// Serving example: boot the in-process inference server on a loopback
// port, hit the KServe-v2 endpoints like an external client, and print
// the classification — the smallest end-to-end tour of the
// registry → pool → micro-batcher → engine path.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"time"

	"micronets"
)

const model = "MicroNet-KWS-S"

func main() {
	log.SetFlags(0)
	// Quiet the per-request log so the example output stays readable.
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := "127.0.0.1:18151"
	done := make(chan error, 1)
	go func() {
		done <- micronets.Serve(ctx, micronets.ServeOptions{
			Addr:   addr,
			Models: []string{model, "DSCNN-S"},
			Logger: logger,
			Deploy: micronets.DeployOptions{Seed: 42, AppendSoftmax: true},
		})
	}()

	base := "http://" + addr
	waitReady(base)

	var meta struct {
		Inputs []struct {
			Shape []int `json:"shape"`
		} `json:"inputs"`
	}
	getJSON(base+"/v2/models/"+model, &meta)
	shape := meta.Inputs[0].Shape
	elems := shape[0] * shape[1] * shape[2]
	fmt.Printf("model %s ready, input shape %v\n", model, shape)

	// A synthetic "spectrogram": any FP32 payload of the right length.
	data := make([]float64, elems)
	for i := range data {
		data[i] = float64(i%7)/7.0 - 0.5
	}
	body, _ := json.Marshal(map[string]any{
		"inputs": []map[string]any{{
			"name": "input", "datatype": "FP32", "shape": shape, "data": data,
		}},
	})
	resp, err := http.Post(base+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Outputs []struct {
			Name string    `json:"name"`
			Data []float64 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	for _, o := range out.Outputs {
		switch o.Name {
		case "class":
			fmt.Printf("argmax class: %d\n", int(o.Data[0]))
		case "score":
			fmt.Printf("top score:    %.4f\n", o.Data[0])
		}
	}

	cancel() // SIGTERM-equivalent: drain and exit
	if err := <-done; err != nil {
		log.Fatalf("drain: %v", err)
	}
	fmt.Println("server drained cleanly")
}

func waitReady(base string) {
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/v2/health/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("server never became ready")
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
