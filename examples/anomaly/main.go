// Anomaly detection end to end: the §4.3 self-supervised protocol on
// synthetic MIMII-like machine sounds — train a machine-ID classifier on
// normal audio only, score anomalies with the negative own-ID softmax
// probability, report AUC, and check the real-time uptime constraint that
// drives the paper's AD latency budget (§5.2.3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"micronets"
	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/nn"
	"micronets/internal/train"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(1))

	fmt.Println("synthesizing machine sounds (4 slide-rail machine IDs)...")
	ad := datasets.SynthAD(datasets.ADOptions{
		Machines: 4, ClipsPerMachine: 6, AnomaliesPerMachine: 4, ClipSeconds: 3, Seed: 2,
	})
	cls := ad.ClassifierDataset()
	fmt.Printf("training images: %d (normal only), test images: %d\n", len(ad.Train), len(ad.Test))

	spec := &arch.Spec{
		Name: "ad-demo", Task: "ad",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 4,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 16, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 2},
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 4},
		},
	}
	model, err := arch.Build(rng, spec, arch.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training machine-ID classifier with mixup (α=0.3, §5.2.3)...")
	steps := 120
	if _, err := train.Fit(model, cls, train.Config{
		Steps: steps, BatchSize: 16,
		LR:          nn.CosineSchedule{Start: 0.02, End: 0.00008, Steps: steps},
		WeightDecay: 0.002,
		MixupAlpha:  0.3,
		Seed:        3,
	}); err != nil {
		log.Fatal(err)
	}

	auc := train.EvalAUC(model, ad.Test)
	fmt.Printf("anomaly-detection AUC: %.2f%% (paper's MicroNet-AD: 95.3-97.3%% on real MIMII)\n\n", auc*100)

	// Real-time constraint: inference must finish within the 640 ms stride
	// between successive spectrogram images (§5.2.3).
	fmt.Println("uptime check for the zoo AD models:")
	for _, name := range []string{"MicroNet-AD-S", "MicroNet-AD-M", "MicroNet-AD-L"} {
		zspec, err := micronets.Model(name)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := micronets.Deploy(zspec, micronets.DeviceL, micronets.DeployOptions{AppendSoftmax: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s latency %.3f s -> uptime %.1f%% of the 640 ms stride (real-time: %v)\n",
			name, dep.LatencySeconds, dep.LatencySeconds/0.640*100, dep.LatencySeconds < 0.640)
	}
}
