// Visual wake words: reproduce the §6.2 deployability analysis — why
// ProxylessNAS and MSNet need the largest MCU while MicroNets target each
// device — then train a small person-detector on synthetic scenes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"micronets"
	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/experiments"
	"micronets/internal/nn"
	"micronets/internal/train"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== VWW deployability across MCUs (Figure 8) ===")
	out, err := experiments.RenderPareto("vww", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("=== deploying MicroNet-VWW-2 on its target (small MCU) ===")
	spec, err := micronets.Model("MicroNet-VWW-2")
	if err != nil {
		log.Fatal(err)
	}
	dep, err := micronets.Deploy(spec, micronets.DeviceS, micronets.DeployOptions{AppendSoftmax: true})
	if err != nil {
		log.Fatal(err)
	}
	if dep.FitsErr != nil {
		log.Fatalf("unexpected: %v", dep.FitsErr)
	}
	fmt.Printf("latency %.3f s, energy %.1f mJ, SRAM %.1f KB\n\n",
		dep.LatencySeconds, dep.EnergyMJ, float64(dep.Report.ModelSRAM())/1024)

	fmt.Println("=== training a small person detector on synthetic scenes ===")
	rng := rand.New(rand.NewSource(1))
	ds := datasets.SynthVWW(datasets.VWWOptions{Size: 32, PerClass: 80, Seed: 2})
	trainDS, testDS := ds.Split(rng, 0.25)
	tiny := &arch.Spec{
		Name: "vww-demo", Task: "vww",
		InputH: 32, InputW: 32, InputC: 1, NumClasses: 2,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 3, KW: 3, OutC: 8, Stride: 2},
			{Kind: arch.IBN, KH: 3, KW: 3, Expand: 16, OutC: 8, Stride: 1},
			{Kind: arch.IBN, KH: 3, KW: 3, Expand: 24, OutC: 16, Stride: 2},
			{Kind: arch.GlobalPool},
			{Kind: arch.Dense, OutC: 2},
		},
	}
	model, err := arch.Build(rng, tiny, arch.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	steps := 200
	if _, err := train.Fit(model, trainDS, train.Config{
		Steps: steps, BatchSize: 16,
		LR:          nn.CosineSchedule{Start: 0.06, End: 0.002, Steps: steps},
		WeightDecay: 4e-5,
		Seed:        3,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("person-detection accuracy: %.1f%% (chance 50%%)\n",
		train.Accuracy(model, testDS)*100)
}
