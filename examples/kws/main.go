// Keyword spotting end to end: synthesize a Speech-Commands-like dataset,
// extract MFCCs, train a small DS-CNN with quantization-aware training and
// SpecAugment, export it to the int8 runtime, and compare float vs int8
// accuracy and on-device cost — the full §5.2.2 pipeline at laptop scale.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"micronets"
	"micronets/internal/arch"
	"micronets/internal/datasets"
	"micronets/internal/graph"
	"micronets/internal/nn"
	"micronets/internal/tensor"
	"micronets/internal/tflm"
	"micronets/internal/train"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(1))

	fmt.Println("synthesizing keyword dataset (12 classes)...")
	ds := datasets.SynthKWS(datasets.KWSOptions{PerClass: 12, Seed: 2})
	trainDS, testDS := ds.Split(rng, 0.25)

	// A scaled-down MicroNet-KWS-style architecture that trains in
	// seconds on the CPU.
	spec := &arch.Spec{
		Name: "kws-demo", Task: "kws",
		InputH: 49, InputW: 10, InputC: 1, NumClasses: 12,
		Blocks: []arch.Block{
			{Kind: arch.Conv, KH: 10, KW: 4, OutC: 16, Stride: 1},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 2},
			{Kind: arch.DSBlock, KH: 3, KW: 3, OutC: 24, Stride: 1},
			{Kind: arch.AvgPool, KH: 25, KW: 5, Stride: 1},
			{Kind: arch.Dense, OutC: 12},
		},
	}
	model, err := arch.Build(rng, spec, arch.BuildOptions{QuantWeightBits: 8, QuantActBits: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training with QAT + SpecAugment (cosine LR, §5.2.2 recipe)...")
	steps := 220
	if _, err := train.Fit(model, trainDS, train.Config{
		Steps: steps, BatchSize: 24,
		LR:          nn.CosineSchedule{Start: 0.05, End: 0.0008, Steps: steps},
		WeightDecay: 0.002,
		SpecAugment: true,
		Seed:        3,
	}); err != nil {
		log.Fatal(err)
	}
	floatAcc := train.Accuracy(model, testDS)
	fmt.Printf("float accuracy: %.1f%%\n", floatAcc*100)

	fmt.Println("exporting to int8 (BN folding + per-channel quantization)...")
	calib, _ := trainDS.RandomBatch(rng, 32)
	gm, err := graph.Export(spec, model, calib, graph.LowerOptions{AppendSoftmax: true})
	if err != nil {
		log.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(gm, 0)
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]*tensor.Tensor, len(testDS.Samples))
	for i, s := range testDS.Samples {
		xs[i] = s.X
	}
	preds, _, err := ip.ClassifyBatch(xs)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, s := range testDS.Samples {
		if preds[i] == s.Label {
			correct++
		}
	}
	int8Acc := float64(correct) / float64(len(testDS.Samples))
	fmt.Printf("int8 accuracy:  %.1f%% (drop %.1f pts)\n", int8Acc*100, (floatAcc-int8Acc)*100)

	dep, err := micronets.DeployModel(spec, gm, micronets.DeviceS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on %s: latency %.3f s, %.1f mJ, SRAM %.1f KB, flash %.1f KB\n",
		dep.Device.Name, dep.LatencySeconds, dep.EnergyMJ,
		float64(dep.Report.ModelSRAM())/1024, float64(dep.Report.ModelFlash())/1024)
}
