// Quickstart: load a MicroNet from the zoo, deploy it on each simulated
// MCU, and print the memory map, latency and energy — the 30-second tour
// of the public API.
package main

import (
	"fmt"
	"log"

	"micronets"
	"micronets/internal/mcu"
)

func main() {
	log.SetFlags(0)
	spec, err := micronets.Model("MicroNet-KWS-S")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spec)
	fmt.Println()

	for _, dev := range []*mcu.Device{micronets.DeviceS, micronets.DeviceM, micronets.DeviceL} {
		dep, err := micronets.Deploy(spec, dev, micronets.DeployOptions{AppendSoftmax: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", dev)
		if dep.FitsErr != nil {
			fmt.Printf("  not deployable: %v\n\n", dep.FitsErr)
			continue
		}
		fmt.Printf("  model SRAM %.1f KB, model flash %.1f KB\n",
			float64(dep.Report.ModelSRAM())/1024, float64(dep.Report.ModelFlash())/1024)
		fmt.Printf("  latency %.3f s, power %.0f mW, energy %.1f mJ/inference\n\n",
			dep.LatencySeconds, dep.ActivePowerMW, dep.EnergyMJ)
	}

	// Side-by-side with the paper's published Table 4 numbers.
	paper, err := micronets.Paper("MicroNet-KWS-S")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper reports: %.1f%% accuracy, %.3f s on the medium MCU, %.0f KB flash\n",
		paper.Accuracy, paper.LatM, paper.FlashKB)
}
