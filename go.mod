module micronets

go 1.24
